(* Machine-readable export of the full metrics state.

   The JSON schema (version 1) is the stable contract between a run that
   records metrics and the tooling that consumes them later — the bench
   baseline/compare harness, CI artifact diffing, ad-hoc jq.  See
   docs/observability.md for the field-by-field description.

   {
     "schema_version": 1,
     "environment":   { "hostname": ..., "ocaml_version": ..., "git_rev": ...,
                        "timestamp": ..., "word_size": ... },
     "counters":      { "<counter name>": <int>, ... },
     "histograms":    { "<name>": { "count", "sum", "mean", "min",
                                    "p50", "p90", "p99", "max" }, ... },
     "spans":         { "<span name>": { "count", "total_ms", "minor_words",
                                         "major_words", "promoted_words" }, ... }
   } *)

type t = {
  environment : (string * string) list;
  counters : (string * int) list;
  histograms : (string * Histogram.stats) list;
  spans : (string * Span.agg) list;
}

let schema_version = 1

(* --- environment --- *)

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* Best effort: metrics must export identically from a tarball, a detached
   worktree or a git checkout, so any failure degrades to "unknown". *)
let git_rev () =
  try
    let ic =
      Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    let status = Unix.close_process_in ic in
    match (status, String.trim line) with
    | Unix.WEXITED 0, rev when rev <> "" -> rev
    | _ -> "unknown"
  with _ -> "unknown"

let environment () =
  [
    ("hostname", (try Unix.gethostname () with _ -> "unknown"));
    ("ocaml_version", Sys.ocaml_version);
    ("git_rev", git_rev ());
    ("timestamp", iso8601 (Unix.gettimeofday ()));
    ("word_size", string_of_int Sys.word_size);
  ]

(* --- capture --- *)

let current () =
  let snap = Metrics.snapshot () in
  {
    environment = environment ();
    counters = snap.Metrics.counters;
    histograms = snap.Metrics.histograms;
    spans = snap.Metrics.spans;
  }

(* --- to JSON --- *)

let histogram_json (s : Histogram.stats) =
  Json.Obj
    [
      ("count", Json.Num (float_of_int s.Histogram.n));
      ("sum", Json.Num s.Histogram.sum);
      ("mean", Json.Num s.Histogram.mean);
      ("min", Json.Num s.Histogram.min);
      ("p50", Json.Num s.Histogram.p50);
      ("p90", Json.Num s.Histogram.p90);
      ("p99", Json.Num s.Histogram.p99);
      ("max", Json.Num s.Histogram.max);
    ]

let span_json (a : Span.agg) =
  Json.Obj
    [
      ("count", Json.Num (float_of_int a.Span.spans));
      ("total_ms", Json.Num a.Span.total_ms);
      ("minor_words", Json.Num a.Span.agg_minor_words);
      ("major_words", Json.Num a.Span.agg_major_words);
      ("promoted_words", Json.Num a.Span.agg_promoted_words);
    ]

let to_json t =
  Json.Obj
    [
      ("schema_version", Json.Num (float_of_int schema_version));
      ( "environment",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) t.environment) );
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) t.counters)
      );
      ( "histograms",
        Json.Obj (List.map (fun (k, s) -> (k, histogram_json s)) t.histograms)
      );
      ("spans", Json.Obj (List.map (fun (k, a) -> (k, span_json a)) t.spans));
    ]

let to_string t = Json.to_string_pretty (to_json t) ^ "\n"

(* --- from JSON --- *)

let num_field ~what j k =
  match Json.member k j with
  | Some (Json.Num f) -> Ok f
  | _ -> Error (Printf.sprintf "%s: missing numeric field %S" what k)

let ( let* ) = Result.bind

let histogram_of_json name j =
  let f = num_field ~what:("histogram " ^ name) j in
  let* n = f "count" in
  let* sum = f "sum" in
  let* mean = f "mean" in
  let* min = f "min" in
  let* p50 = f "p50" in
  let* p90 = f "p90" in
  let* p99 = f "p99" in
  let* max = f "max" in
  Ok
    {
      Histogram.n = int_of_float n;
      sum;
      mean;
      min;
      p50;
      p90;
      p99;
      max;
    }

let span_of_json name j =
  let f = num_field ~what:("span " ^ name) j in
  let* count = f "count" in
  let* total_ms = f "total_ms" in
  let* minor = f "minor_words" in
  let* major = f "major_words" in
  let* promoted = f "promoted_words" in
  Ok
    {
      Span.spans = int_of_float count;
      total_ms;
      agg_minor_words = minor;
      agg_major_words = major;
      agg_promoted_words = promoted;
    }

let all_fields of_json j =
  List.fold_left
    (fun acc (k, v) ->
      let* acc = acc in
      let* parsed = of_json k v in
      Ok ((k, parsed) :: acc))
    (Ok []) (Json.obj_fields j)
  |> Result.map List.rev

let of_json j =
  let* version =
    num_field ~what:"metrics" j "schema_version"
  in
  if int_of_float version <> schema_version then
    Error
      (Printf.sprintf "unsupported schema_version %d (expected %d)"
         (int_of_float version) schema_version)
  else
    let section k =
      match Json.member k j with
      | Some (Json.Obj _ as o) -> Ok o
      | Some _ -> Error (Printf.sprintf "metrics: %S is not an object" k)
      | None -> Error (Printf.sprintf "metrics: missing section %S" k)
    in
    let* env = section "environment" in
    let* counters = section "counters" in
    let* histograms = section "histograms" in
    let* spans = section "spans" in
    let* environment =
      all_fields
        (fun k v ->
          match v with
          | Json.Str s -> Ok s
          | _ -> Error (Printf.sprintf "environment.%s is not a string" k))
        env
    in
    let* counters =
      all_fields
        (fun k v ->
          match v with
          | Json.Num f -> Ok (int_of_float f)
          | _ -> Error (Printf.sprintf "counters.%s is not a number" k))
        counters
    in
    let* histograms = all_fields histogram_of_json histograms in
    let* spans = all_fields span_of_json spans in
    Ok { environment; counters; histograms; spans }

let of_string s =
  let* j = Json.parse s in
  of_json j

let write file =
  let oc = open_out file in
  output_string oc (to_string (current ()));
  close_out oc
