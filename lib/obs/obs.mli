(** Observability for the evaluation pipeline: nestable timed spans,
    operator counters/histograms, and trace export.

    Everything hangs off one process-global switch, off by default.
    Instrumented code pays a single predictable branch per record site when
    disabled, so the library can stay threaded through hot paths
    permanently.  Typical use:

    {[
      Obs.enable ();
      let exs = Mapping_eval.examples db m in
      print_string (Obs.report ());                     (* counter tables *)
      Obs.write_trace "trace.json"                      (* chrome://tracing *)
    ]}

    Counter handles and span names live in {!Names} — the single
    authoritative list shared by the pipeline, the CLI, the bench harness
    and the tests. *)

module Counter = Counter
module Histogram = Histogram
module Span = Span
module Trace_export = Trace_export
module Metrics = Metrics
module Metrics_export = Metrics_export
module Bench_compare = Bench_compare
module Json = Json
module Names = Names

(** Request-scoped telemetry: trace ids, per-request counter deltas and
    captured span subtrees ({!Scope}), the server's leveled JSONL event
    log ({!Event_log}), and Prometheus text exposition of the registries
    ({!Prom_export}). *)
module Scope = Scope

module Event_log = Event_log
module Prom_export = Prom_export

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** [with_span ?attrs name f] runs [f] under a span nested in the current
    one; when disabled, runs [f] directly with no recording. *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span. *)
val set_attr : string -> string -> unit

(** Increment a counter by one (no-op when disabled). *)
val count : Counter.t -> unit

(** Increment a counter by [n] (no-op when disabled). *)
val add : Counter.t -> int -> unit

(** Record a histogram observation (no-op when disabled). *)
val observe : Histogram.t -> float -> unit

(** Hooks for multi-domain execution (used by the [Par] pool; most code
    never calls these).  Recording is domain-safe without hot-path locking:
    worker domains accumulate counters, span trees and histogram
    observations domain-locally; {!Domains.flush_worker} parks them after
    each pool task, and {!Domains.adopt_pending} — called by the pool on
    the main domain once a batch has joined — merges everything into the
    process-wide trace and counter state. *)
module Domains : sig
  val flush_worker : unit -> unit
  val adopt_pending : unit -> unit
end

(** Zero all counters/histograms and drop the recorded trace. *)
val reset : unit -> unit

(** Finished root spans in completion order. *)
val finished_spans : unit -> Span.t list

(** Counter table, histogram table (with percentiles) and the
    allocations-per-span table, as text. *)
val report : unit -> string

(** Write the recorded trace to [file] in Chrome trace_event format. *)
val write_trace : string -> unit

(** Write the full metrics state (counters, histogram summaries, span
    duration/allocation rollups, environment) to [file] as JSON — the
    {!Metrics_export} schema. *)
val write_metrics : string -> unit
