(** Snapshots and text rendering of the process-global metric registries. *)

type snapshot = {
  counters : (string * int) list;
      (** Non-zero counters, in registration order. *)
  histograms : (string * Histogram.stats) list;
      (** Non-empty histograms (span durations are in milliseconds), in
          registration order. *)
  spans : (string * Span.agg) list;
      (** Per-span-name duration/allocation rollup of the finished trace,
          in first-appearance order. *)
}

val snapshot : unit -> snapshot

(** Current value of the counter registered under [name] (0 if absent). *)
val value : string -> int

(** Aligned table of the non-zero counters. *)
val render_counters : unit -> string

(** Counters table, histogram table (with percentiles) and the
    allocations-per-span table, each included when non-empty. *)
val render : unit -> string

(** Zero all counters and histograms (finished spans are dropped by
    {!Obs.reset}, which also calls {!Span.reset}). *)
val reset : unit -> unit
