(** Snapshots and text rendering of the process-global metric registries. *)

type snapshot = {
  counters : (string * int) list;
      (** Non-zero counters, in registration order. *)
  histograms : (string * Histogram.stats) list;
      (** Non-empty histograms (span durations are in milliseconds), in
          registration order. *)
}

val snapshot : unit -> snapshot

(** Current value of the counter registered under [name] (0 if absent). *)
val value : string -> int

(** Aligned table of the non-zero counters. *)
val render_counters : unit -> string

(** Counters table plus, when non-empty, the histogram table. *)
val render : unit -> string

(** Zero all counters and histograms. *)
val reset : unit -> unit
