(* The single authoritative list of counter handles and span names used by
   the instrumented pipeline.  Bench tables, the CLI and the tests all go
   through these values, so a string key cannot silently drift between
   producers and consumers.

   Naming convention (see docs/observability.md):
     <layer>.<operation>[.<measure>]
   all lowercase, dot-separated; counters name the thing counted in plural
   ("rows", "checks", "probes"). *)

(* --- counters: relational algebra operators --- *)

let select_rows_in = Counter.make "algebra.select.rows_in"
let select_rows_out = Counter.make "algebra.select.rows_out"
let project_rows = Counter.make "algebra.project.rows"
let product_rows_out = Counter.make "algebra.product.rows_out"
let join_hash_probes = Counter.make "algebra.join.hash_probes"
let join_loop_comparisons = Counter.make "algebra.join.loop_comparisons"
let join_rows_out = Counter.make "algebra.join.rows_out"
let outer_join_dangling = Counter.make "algebra.outer_join.dangling"
let outer_union_rows = Counter.make "algebra.outer_union.rows"

(* --- counters: full disjunction / minimum union --- *)

let subsumption_checks = Counter.make "fulldisj.subsumption_checks"
let index_probes = Counter.make "fulldisj.index_probes"
let assoc_considered = Counter.make "fulldisj.assoc_considered"
let assoc_kept = Counter.make "fulldisj.assoc_kept"
let categories = Counter.make "fulldisj.categories"

(* --- counters: mapping evaluation and operators --- *)

let eval_examples = Counter.make "mapping_eval.examples"
let eval_positive = Counter.make "mapping_eval.positive_examples"
let chase_occurrences = Counter.make "chase.occurrences"
let chase_alternatives = Counter.make "chase.alternatives"
let walk_paths = Counter.make "walk.paths_enumerated"
let walk_alternatives = Counter.make "walk.alternatives"
let illustration_candidates = Counter.make "illustration.candidates_considered"
let illustration_selected = Counter.make "illustration.examples_selected"

(* --- counters: memoized evaluation engine (lib/engine) --- *)

let cache_fj_hits = Counter.make "cache.fj.hits"
let cache_fj_misses = Counter.make "cache.fj.misses"
let cache_fj_evictions = Counter.make "cache.fj.evictions"
let cache_dg_hits = Counter.make "cache.dg.hits"
let cache_dg_misses = Counter.make "cache.dg.misses"
let cache_dg_evictions = Counter.make "cache.dg.evictions"

(* A gauge, not a monotonic counter: the cache's approximate resident
   footprint after the most recent insert/evict (set via [Counter.set]). *)
let cache_bytes_resident = Counter.make "cache.bytes_resident"

(* --- counters: incremental delta maintenance --- *)

let delta_records = Counter.make "delta.records"
let delta_fallbacks = Counter.make "delta.fallbacks"

(* Bumped when recording a step pushes the oldest step out of a database's
   bounded changelog window — from then on [deltas_from] answers "unknown
   ancestry" for versions behind the drop, so promotion falls back to a
   from-scratch evaluation instead of silently repairing a stale entry. *)
let delta_history_evicted = Counter.make "delta.history_evicted"
let cache_promote_fj_free = Counter.make "cache.promote.fj.free"
let cache_promote_fj_repaired = Counter.make "cache.promote.fj.repaired"
let cache_promote_dg_free = Counter.make "cache.promote.dg.free"
let cache_promote_dg_repaired = Counter.make "cache.promote.dg.repaired"

(* --- counters: branching version store (lib/version) --- *)

(* Promotions whose source entry was cached at or below the session's
   branch-fork version — warm state inherited from the common ancestor of
   another branch rather than from this branch's own history. *)
let cache_promote_fj_cross_branch = Counter.make "cache.promote.cross_branch.fj"
let cache_promote_dg_cross_branch = Counter.make "cache.promote.cross_branch.dg"
let version_branches = Counter.make "version.branches"
let version_merges = Counter.make "version.merges"
let version_commits = Counter.make "version.commits"
let version_snapshot_saves = Counter.make "version.snapshot.saves"
let version_snapshot_loads = Counter.make "version.snapshot.loads"
let version_snapshot_commits_replayed =
  Counter.make "version.snapshot.commits_replayed"

(* Gauges mirroring the process-global value-intern pool ([Value_pool]):
   distinct interned values and their approximate retained bytes.  The
   pool never evicts, so in a long-lived server these only grow — the
   scrape is the leak detector (docs/data-plane.md). *)
let value_pool_count = Counter.make "value_pool.count"
let value_pool_bytes = Counter.make "value_pool.bytes"

(* --- counters: server worker plane (lib/par Workers + lib/server Loop) ---

   [server.workers.dispatched] counts requests handed to the worker pool;
   [server.workers.busy] is a gauge (workers executing right now) and
   [server.workers.wait_ms] the cumulative queue-wait (submit-to-start)
   in integer milliseconds — all refreshed from the executor's internal
   atomics by the I/O loop via [Counter.set], the same single-writer gauge
   pattern as [value_pool.*]. *)

let server_workers_dispatched = Counter.make "server.workers.dispatched"
let server_workers_busy = Counter.make "server.workers.busy"
let server_workers_wait_ms = Counter.make "server.workers.wait_ms"

(* --- counters: lineage / explanation --- *)

let explain_derivations = Counter.make "explain.derivations"
let explain_tuples_matched = Counter.make "explain.tuples_matched"

(* --- span names --- *)

let sp_illustrate = "clio.illustrate"
let sp_data_associations = "mapping_eval.data_associations"
let sp_examples = "mapping_eval.examples"
let sp_eval = "mapping_eval.eval"
let sp_fulldisj = "fulldisj.compute"
let sp_categories = "fulldisj.categories"
let sp_dedup = "fulldisj.dedup"
let sp_min_union = "fulldisj.min_union"
let sp_full_associations = "fulldisj.full_associations"
let sp_oj_plan = "outerjoin.plan"
let sp_oj_join = "outerjoin.join"
let sp_oj_sweep = "outerjoin.sweep"
let sp_illustration_select = "illustration.select"
let sp_chase = "op_chase.chase"
let sp_walk = "op_walk.data_walk"
let sp_explain = "explain.of_target_tuple"
let sp_why_null = "explain.why_null"

(* Server request scope and the engine entry points it captures: the
   request span is the root of every per-request exemplar trace; the
   engine spans carry trace-id and cache-outcome attributes. *)
let sp_request = "server.request"
let sp_engine_fj = "engine.fj"
let sp_engine_dg = "engine.dg"
