module Counter = Counter
module Histogram = Histogram
module Span = Span
module Trace_export = Trace_export
module Metrics = Metrics
module Metrics_export = Metrics_export
module Bench_compare = Bench_compare
module Json = Json
module Names = Names
module Scope = Scope
module Event_log = Event_log
module Prom_export = Prom_export

let enable () = Switch.on := true
let disable () = Switch.on := false
let enabled () = !Switch.on

let with_span = Span.with_span
let set_attr = Span.set_attr
let count = Counter.incr
let add = Counter.add
let observe = Histogram.observe

module Domains = struct
  let flush_worker () =
    Counter.flush_worker_cells ();
    Span.flush_worker ();
    Histogram.flush_worker ()

  let adopt_pending () =
    Span.adopt_pending ();
    Histogram.adopt_pending ()
end

let reset () =
  Metrics.reset ();
  Span.reset ()

let finished_spans = Span.finished
let report = Metrics.render

let write_trace file =
  let oc = open_out file in
  output_string oc (Trace_export.to_chrome (Span.finished ()));
  close_out oc

let write_metrics = Metrics_export.write
