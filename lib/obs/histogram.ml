type stats = {
  n : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type t = {
  name : string;
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  (* Raw observations, for exact percentiles.  Grows by doubling; only
     written when observability is enabled, so disabled-mode cost is
     unchanged.  8 bytes per observation — observations are span
     durations and similar once-per-operation events, not per-tuple. *)
  mutable samples : float array;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let rev_order : t list ref = ref []

(* Handles are created from worker domains too (a span name's first use may
   happen inside a pool task), so registration is locked.  Sample recording
   stays unlocked: only the main domain writes into a histogram. *)
let registry_mutex = Mutex.create ()

let make name =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
          let h =
            {
              name;
              n = 0;
              sum = 0.;
              min_v = infinity;
              max_v = neg_infinity;
              samples = [||];
            }
          in
          Hashtbl.replace registry name h;
          rev_order := h :: !rev_order;
          h)

let name h = h.name

let record h v =
  if h.n >= Array.length h.samples then begin
    let cap = max 16 (2 * Array.length h.samples) in
    let grown = Array.make cap 0. in
    Array.blit h.samples 0 grown 0 h.n;
    h.samples <- grown
  end;
  h.samples.(h.n) <- v;
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

(* Worker-domain observations are buffered domain-locally (newest first),
   parked in [pending] when the task completes, and replayed into the real
   histograms by the main domain after the batch joins — so the sample
   arrays are only ever mutated by one domain. *)
let buffer_key : (t * float) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let pending_mutex = Mutex.create ()
let pending : (t * float) list ref = ref []

let observe h v =
  if !Switch.on then
    if Domain.is_main_domain () then record h v
    else begin
      let b = Domain.DLS.get buffer_key in
      b := (h, v) :: !b
    end

let flush_worker () =
  let b = Domain.DLS.get buffer_key in
  match !b with
  | [] -> ()
  | obs ->
      b := [];
      Mutex.protect pending_mutex (fun () -> pending := obs @ !pending)

let adopt_pending () =
  let obs =
    Mutex.protect pending_mutex (fun () ->
        let o = !pending in
        pending := [];
        o)
  in
  List.iter (fun (h, v) -> record h v) (List.rev obs)

(* Nearest-rank percentile on the sorted samples: the smallest value with
   at least q% of the observations at or below it. *)
let percentile_of_sorted sorted n q =
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (q /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let percentile h q =
  let sorted = Array.sub h.samples 0 h.n in
  Array.sort compare sorted;
  percentile_of_sorted sorted h.n q

let stats h : stats =
  let sorted = Array.sub h.samples 0 h.n in
  Array.sort compare sorted;
  let p = percentile_of_sorted sorted h.n in
  {
    n = h.n;
    sum = h.sum;
    mean = (if h.n = 0 then 0. else h.sum /. float_of_int h.n);
    min = (if h.n = 0 then 0. else h.min_v);
    max = (if h.n = 0 then 0. else h.max_v);
    p50 = p 50.;
    p90 = p 90.;
    p99 = p 99.;
  }

let find name =
  Mutex.protect registry_mutex (fun () -> Hashtbl.find_opt registry name)

let all () = Mutex.protect registry_mutex (fun () -> List.rev !rev_order)

let reset_all () =
  Mutex.protect pending_mutex (fun () -> pending := []);
  List.iter
    (fun h ->
      h.n <- 0;
      h.sum <- 0.;
      h.min_v <- infinity;
      h.max_v <- neg_infinity;
      h.samples <- [||])
    (all ())
