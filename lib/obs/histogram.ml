type stats = { n : int; sum : float; mean : float; min : float; max : float }

type t = {
  name : string;
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let rev_order : t list ref = ref []

let make name =
  match Hashtbl.find_opt registry name with
  | Some h -> h
  | None ->
      let h = { name; n = 0; sum = 0.; min_v = infinity; max_v = neg_infinity } in
      Hashtbl.replace registry name h;
      rev_order := h :: !rev_order;
      h

let name h = h.name

let observe h v =
  if !Switch.on then begin
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v
  end

let stats h : stats =
  {
    n = h.n;
    sum = h.sum;
    mean = (if h.n = 0 then 0. else h.sum /. float_of_int h.n);
    min = (if h.n = 0 then 0. else h.min_v);
    max = (if h.n = 0 then 0. else h.max_v);
  }

let find = Hashtbl.find_opt registry
let all () = List.rev !rev_order

let reset_all () =
  List.iter
    (fun h ->
      h.n <- 0;
      h.sum <- 0.;
      h.min_v <- infinity;
      h.max_v <- neg_infinity)
    !rev_order
