type stats = {
  n : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(* Retention bound for raw observations.  Below it percentiles are exact;
   beyond it the sample array becomes a uniform reservoir (algorithm R) of
   this size and percentiles are reservoir estimates.  Count, sum, mean,
   min, max and the exposition buckets stay exact at any volume — only the
   percentile estimator degrades, and it degrades gracefully (a 4096-sample
   uniform reservoir pins p99 to well under a percentile point of error).
   Before the cap existed a long-lived daemon retained every observation
   forever: 8 bytes x requests x histograms, an unbounded leak. *)
let reservoir_cap = 4096

(* Fixed bucket upper bounds (inclusive, Prometheus [le] semantics) for the
   text exposition: a 1-2.5-5 ladder wide enough for both sub-millisecond
   operator spans and multi-second requests, in milliseconds.  Counts are
   maintained exactly on every observation, independent of the reservoir. *)
let bucket_bounds =
  [|
    0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.;
    250.; 500.; 1000.; 2500.; 5000.; 10000.;
  |]

type t = {
  name : string;
  mutable n : int;  (* total observations, beyond the reservoir *)
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  (* Raw observations for percentiles: the first [reservoir_cap] exactly,
     a uniform reservoir thereafter.  Grows by doubling up to the cap; only
     written when observability is enabled, so disabled-mode cost is
     unchanged. *)
  mutable samples : float array;
  (* Per-bucket (non-cumulative) counts; last slot is the +Inf overflow. *)
  buckets : int array;
  (* Deterministic per-histogram stream for reservoir replacement. *)
  rng : Random.State.t;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let rev_order : t list ref = ref []

(* Handles are created from worker domains too (a span name's first use may
   happen inside a pool task), so registration is locked.  Sample recording
   is locked separately ([record_mutex] below). *)
let registry_mutex = Mutex.create ()

let make name =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
          let h =
            {
              name;
              n = 0;
              sum = 0.;
              min_v = infinity;
              max_v = neg_infinity;
              samples = [||];
              buckets = Array.make (Array.length bucket_bounds + 1) 0;
              rng = Random.State.make [| Hashtbl.hash name |];
            }
          in
          Hashtbl.replace registry name h;
          rev_order := h :: !rev_order;
          h)

let name h = h.name

(* Serializes every sample-array mutation and read.  Main-domain spans
   record directly; worker-domain observations are parked and replayed by
   whichever domain calls [adopt_pending] — with the server running
   requests on several worker domains at once, "whichever domain" is no
   longer always the main one, so recording must be safe from any
   domain. *)
let record_mutex = Mutex.create ()

(* Retained sample count: everything up to the cap, the reservoir after. *)
let retained h = min h.n reservoir_cap

let bucket_index v =
  let rec go i =
    if i >= Array.length bucket_bounds then i
    else if v <= bucket_bounds.(i) then i
    else go (i + 1)
  in
  go 0

let record_locked h v =
  (if h.n < reservoir_cap then begin
     if h.n >= Array.length h.samples then begin
       let cap = min reservoir_cap (max 16 (2 * Array.length h.samples)) in
       let grown = Array.make cap 0. in
       Array.blit h.samples 0 grown 0 h.n;
       h.samples <- grown
     end;
     h.samples.(h.n) <- v
   end
   else
     (* Algorithm R: observation i (0-based) replaces a uniformly chosen
        slot with probability cap/(i+1), keeping every prefix a uniform
        sample of the stream so far. *)
     let j = Random.State.int h.rng (h.n + 1) in
     if j < reservoir_cap then h.samples.(j) <- v);
  h.buckets.(bucket_index v) <- h.buckets.(bucket_index v) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let record h v = Mutex.protect record_mutex (fun () -> record_locked h v)

(* Worker-domain observations are buffered domain-locally (newest first),
   parked in [pending] when the task completes, and replayed into the real
   histograms after the batch joins — by the batch's caller, whatever
   domain that is (the locked [record] makes the replay safe). *)
let buffer_key : (t * float) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let pending_mutex = Mutex.create ()
let pending : (t * float) list ref = ref []

let observe h v =
  if !Switch.on then
    if Domain.is_main_domain () then record h v
    else begin
      let b = Domain.DLS.get buffer_key in
      b := (h, v) :: !b
    end

let flush_worker () =
  let b = Domain.DLS.get buffer_key in
  match !b with
  | [] -> ()
  | obs ->
      b := [];
      Mutex.protect pending_mutex (fun () -> pending := obs @ !pending)

let adopt_pending () =
  let obs =
    Mutex.protect pending_mutex (fun () ->
        let o = !pending in
        pending := [];
        o)
  in
  List.iter (fun (h, v) -> record h v) (List.rev obs)

(* Nearest-rank percentile on the sorted samples: the smallest value with
   at least q% of the observations at or below it. *)
let percentile_of_sorted sorted n q =
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (q /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let percentile h q =
  let sorted, kept =
    Mutex.protect record_mutex (fun () ->
        let kept = retained h in
        (Array.sub h.samples 0 kept, kept))
  in
  Array.sort compare sorted;
  percentile_of_sorted sorted kept q

let stats h : stats =
  let sorted, kept, n, sum, min_v, max_v =
    Mutex.protect record_mutex (fun () ->
        let kept = retained h in
        (Array.sub h.samples 0 kept, kept, h.n, h.sum, h.min_v, h.max_v))
  in
  Array.sort compare sorted;
  let p = percentile_of_sorted sorted kept in
  {
    n;
    sum;
    mean = (if n = 0 then 0. else sum /. float_of_int n);
    min = (if n = 0 then 0. else min_v);
    max = (if n = 0 then 0. else max_v);
    p50 = p 50.;
    p90 = p 90.;
    p99 = p 99.;
  }

let bucket_counts h =
  Mutex.protect record_mutex (fun () -> Array.copy h.buckets)

let sample_count h = Mutex.protect record_mutex (fun () -> retained h)

let find name =
  Mutex.protect registry_mutex (fun () -> Hashtbl.find_opt registry name)

let all () = Mutex.protect registry_mutex (fun () -> List.rev !rev_order)

let reset_all () =
  Mutex.protect pending_mutex (fun () -> pending := []);
  List.iter
    (fun h ->
      Mutex.protect record_mutex (fun () ->
          h.n <- 0;
          h.sum <- 0.;
          h.min_v <- infinity;
          h.max_v <- neg_infinity;
          h.samples <- [||];
          Array.fill h.buckets 0 (Array.length h.buckets) 0))
    (all ())
