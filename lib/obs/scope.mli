(** Request-scoped telemetry.

    A {e scope} ties one unit of externally-driven work — a wire request in
    [clio_serve] — to a trace id, and captures what happened inside it:
    wall-clock duration, the delta of every registered counter (cache
    hits/misses, promote outcomes, operator counts...), and the request's
    own span subtree, detached from the global trace so a long-lived server
    never accumulates per-request roots.

    Scopes nest on a domain-local stack; {!current} exposes the calling
    domain's innermost active trace id so engine-level spans
    ({!Obs.Names.sp_engine_fj} etc.) can tag themselves with the request
    they serve.  Domain-local because the server runs one request per
    worker domain: pool-helper tasks a scoped request fans out to see
    [None] (their spans still join the request tree via {!Span}
    parking/adoption).  Counter deltas are best-effort under concurrent
    scopes — bumps from requests running at the same time land in each
    other's windows.

    When observability is disabled, {!run} only measures duration — no
    snapshot, no capture — keeping the telemetry-off fast path one branch
    wide. *)

type record = {
  trace_id : string;
  duration_ms : float;
  deltas : (string * int) list;
      (** counters that moved during the scope, registration order *)
  root : Span.t option;
      (** captured span subtree; [None] when observability is disabled *)
}

(** A fresh process-unique trace id ([<boot>-<seq>] hex).  Correlation
    handles, not capabilities. *)
val fresh_id : unit -> string

(** The innermost active scope's trace id.  Readable from any domain. *)
val current : unit -> string option

(** [run ?attrs ~trace_id name f] executes [f] inside a scope.  The
    returned record always carries [trace_id] and a measured duration;
    counter deltas and the captured span (named [name], with
    [("trace_id", trace_id)] prepended to [attrs]) are populated only when
    observability is enabled.  The scope is popped even if [f] raises (the
    record is then lost with the exception). *)
val run :
  ?attrs:(string * string) list ->
  trace_id:string ->
  string ->
  (unit -> 'a) ->
  'a * record
