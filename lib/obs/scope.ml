type record = {
  trace_id : string;
  duration_ms : float;
  deltas : (string * int) list;
  root : Span.t option;
}

(* Process-unique-enough trace ids: a pid fragment and a boot-time hash
   distinguish server restarts, the atomic counter distinguishes requests
   within one process.  Not cryptographic — these are correlation handles,
   not capabilities. *)
let boot_salt = lazy (Hashtbl.hash (Unix.getpid (), Unix.gettimeofday ()) land 0xffffff)
let id_counter = Atomic.make 0

let fresh_id () =
  let n = Atomic.fetch_and_add id_counter 1 in
  Printf.sprintf "%06x-%06x" (Lazy.force boot_salt) (n land 0xffffff)

(* Stack of active scope trace ids, innermost first.  Only the main domain
   pushes and pops (the server loop is single-threaded); worker domains may
   read [current] concurrently, hence the Atomic. *)
let stack : string list Atomic.t = Atomic.make []

let current () = match Atomic.get stack with [] -> None | id :: _ -> Some id

let run ?(attrs = []) ~trace_id name f =
  if not !Switch.on then begin
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let duration_ms = 1000. *. (Unix.gettimeofday () -. t0) in
    (r, { trace_id; duration_ms; deltas = []; root = None })
  end
  else begin
    let before = Counter.snapshot () in
    Atomic.set stack (trace_id :: Atomic.get stack);
    let r, span =
      Fun.protect
        ~finally:(fun () ->
          match Atomic.get stack with
          | _ :: rest -> Atomic.set stack rest
          | [] -> ())
        (fun () ->
          Span.with_captured ~attrs:(("trace_id", trace_id) :: attrs) name f)
    in
    ( r,
      {
        trace_id;
        duration_ms = Span.duration_ms span;
        deltas = Counter.deltas_since before;
        root = Some span;
      } )
  end
