type record = {
  trace_id : string;
  duration_ms : float;
  deltas : (string * int) list;
  root : Span.t option;
}

(* Process-unique-enough trace ids: a pid fragment and a boot-time hash
   distinguish server restarts, the atomic counter distinguishes requests
   within one process.  Not cryptographic — these are correlation handles,
   not capabilities. *)
let boot_salt = lazy (Hashtbl.hash (Unix.getpid (), Unix.gettimeofday ()) land 0xffffff)
let id_counter = Atomic.make 0

let fresh_id () =
  let n = Atomic.fetch_and_add id_counter 1 in
  Printf.sprintf "%06x-%06x" (Lazy.force boot_salt) (n land 0xffffff)

(* Stack of active scope trace ids, innermost first — domain-local, like
   the span stack: with the server executing requests on several worker
   domains at once, each domain runs its own scope and a shared stack
   would interleave pushes and pops across requests.  [current] therefore
   answers for the calling domain only: pool-helper tasks spawned by a
   scoped request see [None] (their span trees still nest into the request
   via the Span parking/adoption machinery). *)
let stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let current () = match !(stack ()) with [] -> None | id :: _ -> Some id

(* Counter deltas around a scope: on a worker domain this domain's bumps
   sit in its domain-local cells until flushed, so fold them into the
   global totals at both edges of the window — otherwise the scope's own
   work would be invisible to its delta.  With several scopes running at
   once the deltas are best-effort attribution (concurrent requests' bumps
   land in the same window); per-request exactness would need per-domain
   snapshots and is not worth the bookkeeping. *)
let counter_sync () =
  if not (Domain.is_main_domain ()) then Counter.flush_worker_cells ()

let run ?(attrs = []) ~trace_id name f =
  if not !Switch.on then begin
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let duration_ms = 1000. *. (Unix.gettimeofday () -. t0) in
    (r, { trace_id; duration_ms; deltas = []; root = None })
  end
  else begin
    counter_sync ();
    let before = Counter.snapshot () in
    let stack = stack () in
    stack := trace_id :: !stack;
    let r, span =
      Fun.protect
        ~finally:(fun () ->
          match !stack with
          | _ :: rest -> stack := rest
          | [] -> ())
        (fun () ->
          Span.with_captured ~attrs:(("trace_id", trace_id) :: attrs) name f)
    in
    counter_sync ();
    ( r,
      {
        trace_id;
        duration_ms = Span.duration_ms span;
        deltas = Counter.deltas_since before;
        root = Some span;
      } )
  end
