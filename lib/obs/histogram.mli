(** Named summary histograms (count / sum / mean / min / max) with the same
    process-global registry discipline as {!Counter}.  Span durations are
    recorded here automatically under ["span.<span name>"], giving a cheap
    per-operation latency rollup even when no trace file is written. *)

type t

type stats = { n : int; sum : float; mean : float; min : float; max : float }

(** [make name] returns the registered histogram called [name], creating it
    empty on first use. *)
val make : string -> t

val name : t -> string

(** Record one observation iff observability is enabled. *)
val observe : t -> float -> unit

val stats : t -> stats
val find : string -> t option

(** All registered histograms in registration order. *)
val all : unit -> t list

val reset_all : unit -> unit
