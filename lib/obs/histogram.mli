(** Named summary histograms with the same process-global registry
    discipline as {!Counter}.  Span durations are recorded here
    automatically under ["span.<span name>"], giving a cheap per-operation
    latency rollup even when no trace file is written.

    Raw observations are retained (only while observability is enabled),
    so {!stats} reports exact nearest-rank percentiles alongside
    count/mean/min/max.  Observations are once-per-operation events (span
    durations), not per-tuple counts, so retention is cheap. *)

type t

type stats = {
  n : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;  (** median, nearest-rank *)
  p90 : float;
  p99 : float;
}

(** [make name] returns the registered histogram called [name], creating it
    empty on first use. *)
val make : string -> t

val name : t -> string

(** Record one observation iff observability is enabled. *)
val observe : t -> float -> unit

(** Summary including exact nearest-rank percentiles (0 everywhere when
    empty). *)
val stats : t -> stats

(** Exact nearest-rank percentile, [q] in percent (e.g. [percentile h 99.]). *)
val percentile : t -> float -> float

val find : string -> t option

(** All registered histograms in registration order. *)
val all : unit -> t list

val reset_all : unit -> unit

(** Worker domains buffer observations domain-locally; only the main domain
    mutates a histogram's sample array.  [flush_worker] parks this domain's
    buffered observations for adoption (pool calls it per completed task);
    [adopt_pending] replays everything parked — main domain only, after the
    batch has joined. *)
val flush_worker : unit -> unit

val adopt_pending : unit -> unit
