(** Named summary histograms with the same process-global registry
    discipline as {!Counter}.  Span durations are recorded here
    automatically under ["span.<span name>"], giving a cheap per-operation
    latency rollup even when no trace file is written.

    Raw observations are retained up to {!reservoir_cap} per histogram
    (only while observability is enabled): below the cap {!stats} reports
    exact nearest-rank percentiles alongside count/mean/min/max; beyond it
    the retained samples form a uniform reservoir (Vitter's algorithm R,
    deterministic per-name stream) and percentiles become reservoir
    estimates — count/sum/mean/min/max and the fixed exposition buckets
    stay exact at any volume.  This bounds a long-lived daemon's memory:
    previously every observation was retained forever. *)

type t

type stats = {
  n : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;  (** median, nearest-rank *)
  p90 : float;
  p99 : float;
}

(** Maximum raw observations retained per histogram for percentile
    estimation (4096).  Percentiles are exact while [n <= reservoir_cap]. *)
val reservoir_cap : int

(** Fixed bucket upper bounds (inclusive [le] semantics, milliseconds) used
    for the Prometheus text exposition; an implicit +Inf overflow bucket
    follows the last bound.  Bucket counts are exact regardless of the
    reservoir. *)
val bucket_bounds : float array

(** [make name] returns the registered histogram called [name], creating it
    empty on first use. *)
val make : string -> t

val name : t -> string

(** Record one observation iff observability is enabled. *)
val observe : t -> float -> unit

(** Summary including nearest-rank percentiles over the retained samples
    (exact while [n <= reservoir_cap]; 0 everywhere when empty). *)
val stats : t -> stats

(** Nearest-rank percentile over the retained samples, [q] in percent
    (e.g. [percentile h 99.]).  Exact while [n <= reservoir_cap]. *)
val percentile : t -> float -> float

(** Per-bucket (non-cumulative) exact counts aligned with {!bucket_bounds};
    the extra final slot is the +Inf overflow.  Fresh copy. *)
val bucket_counts : t -> int array

(** Number of raw samples currently retained: [min n reservoir_cap]. *)
val sample_count : t -> int

val find : string -> t option

(** All registered histograms in registration order. *)
val all : unit -> t list

val reset_all : unit -> unit

(** Worker domains buffer observations domain-locally.  [flush_worker]
    parks this domain's buffered observations for adoption (pool calls it
    per completed task); [adopt_pending] replays everything parked into the
    real histograms — callable from any domain after a batch has joined
    (recording is internally locked). *)
val flush_worker : unit -> unit

val adopt_pending : unit -> unit
