type t = {
  name : string;
  id : int;
  mutable value : int;  (* main-domain increments, unlocked *)
  mutable worker_value : int;  (* worker flushes, under [flush_mutex] *)
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let rev_order : t list ref = ref []
let next_id = ref 0

(* Guards the registry (handles may be created from worker domains, e.g.
   first use of a histogram-backed span name inside a pool task). *)
let registry_mutex = Mutex.create ()

let make name =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let c = { name; id = !next_id; value = 0; worker_value = 0 } in
          incr next_id;
          Hashtbl.replace registry name c;
          rev_order := c :: !rev_order;
          c)

let name c = c.name

(* Reads see main-domain bumps immediately and worker bumps at the flush
   points [Par] inserts between a task finishing and its batch completing,
   so a count read after [Par.map] returns includes all of the batch's
   increments. *)
let value c = c.value + c.worker_value

(* Worker-domain increments accumulate in a domain-local cell array indexed
   by counter id — no locking on the bump path — and are folded into
   [worker_value] by [flush_worker_cells] when a pool task completes. *)
let cells_key : int array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let cell_add c n =
  let cells = Domain.DLS.get cells_key in
  if c.id >= Array.length !cells then begin
    let grown = Array.make (max 64 (2 * (c.id + 1))) 0 in
    Array.blit !cells 0 grown 0 (Array.length !cells);
    cells := grown
  end;
  !cells.(c.id) <- !cells.(c.id) + n

let flush_mutex = Mutex.create ()

let flush_worker_cells () =
  let cells = !(Domain.DLS.get cells_key) in
  if Array.exists (fun n -> n <> 0) cells then begin
    let handles =
      Mutex.protect registry_mutex (fun () -> List.rev !rev_order)
    in
    Mutex.protect flush_mutex (fun () ->
        List.iter
          (fun c ->
            if c.id < Array.length cells && cells.(c.id) <> 0 then begin
              c.worker_value <- c.worker_value + cells.(c.id);
              cells.(c.id) <- 0
            end)
          handles)
  end

let add_n c n =
  if Domain.is_main_domain () then c.value <- c.value + n else cell_add c n

let bump c = add_n c 1
let bump_by c n = add_n c n

(* Gauges are set from whichever domain computed the reading; last writer
   wins, which is the natural semantics for a gauge. *)
let set c n = c.value <- n
let incr c = if !Switch.on then add_n c 1
let add c n = if !Switch.on then add_n c n

let find name =
  Mutex.protect registry_mutex (fun () -> Hashtbl.find_opt registry name)

let all () = Mutex.protect registry_mutex (fun () -> List.rev !rev_order)

(* Registration ids are dense (0 .. next_id-1), so a snapshot is just an
   int array indexed by id: taking and diffing one costs a single array
   allocation and no string hashing — unlike a name-keyed table, cheap
   enough to run once per server request. *)
type snapshot = int array

let snapshot () =
  Mutex.protect registry_mutex (fun () ->
      let arr = Array.make !next_id 0 in
      List.iter (fun c -> arr.(c.id) <- value c) !rev_order;
      arr)

let deltas_since before =
  let n = Array.length before in
  List.filter_map
    (fun c ->
      let base = if c.id < n then before.(c.id) else 0 in
      let d = value c - base in
      if d = 0 then None else Some (c.name, d))
    (all ())

let reset_all () =
  List.iter
    (fun c ->
      c.value <- 0;
      c.worker_value <- 0)
    (all ())
