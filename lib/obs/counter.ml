type t = { name : string; mutable value : int }

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let rev_order : t list ref = ref []

let make name =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
      let c = { name; value = 0 } in
      Hashtbl.replace registry name c;
      rev_order := c :: !rev_order;
      c

let name c = c.name
let value c = c.value

let bump c = c.value <- c.value + 1
let bump_by c n = c.value <- c.value + n
let set c n = c.value <- n
let incr c = if !Switch.on then c.value <- c.value + 1
let add c n = if !Switch.on then c.value <- c.value + n

let find = Hashtbl.find_opt registry
let all () = List.rev !rev_order
let reset_all () = List.iter (fun c -> c.value <- 0) !rev_order
