type snapshot = {
  counters : (string * int) list;
  histograms : (string * Histogram.stats) list;
}

let snapshot () =
  {
    counters =
      Counter.all ()
      |> List.filter_map (fun c ->
             let v = Counter.value c in
             if v = 0 then None else Some (Counter.name c, v));
    histograms =
      Histogram.all ()
      |> List.filter_map (fun h ->
             let s = Histogram.stats h in
             if s.Histogram.n = 0 then None else Some (Histogram.name h, s));
  }

let value name =
  match Counter.find name with Some c -> Counter.value c | None -> 0

let counter_lines counters =
  match counters with
  | [] -> [ "(no counters recorded)" ]
  | _ ->
      let width =
        List.fold_left (fun w (n, _) -> max w (String.length n)) 7 counters
      in
      Printf.sprintf "%-*s %12s" width "counter" "value"
      :: String.make (width + 13) '-'
      :: List.map
           (fun (n, v) -> Printf.sprintf "%-*s %12d" width n v)
           counters

let histogram_lines histograms =
  match histograms with
  | [] -> []
  | _ ->
      let width =
        List.fold_left (fun w (n, _) -> max w (String.length n)) 9 histograms
      in
      Printf.sprintf "%-*s %6s %10s %10s %10s %10s" width "histogram" "n"
        "total" "mean" "min" "max"
      :: String.make (width + 57) '-'
      :: List.map
           (fun (n, s) ->
             Printf.sprintf "%-*s %6d %10.3f %10.3f %10.3f %10.3f" width n
               s.Histogram.n s.Histogram.sum s.Histogram.mean s.Histogram.min
               s.Histogram.max)
           histograms

let render_counters () = String.concat "\n" (counter_lines (snapshot ()).counters)

let render () =
  let snap = snapshot () in
  let sections =
    [ counter_lines snap.counters ]
    @ match histogram_lines snap.histograms with [] -> [] | ls -> [ ls ]
  in
  String.concat "\n\n" (List.map (String.concat "\n") sections)

let reset () =
  Counter.reset_all ();
  Histogram.reset_all ()
