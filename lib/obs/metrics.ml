type snapshot = {
  counters : (string * int) list;
  histograms : (string * Histogram.stats) list;
  spans : (string * Span.agg) list;
}

let snapshot () =
  {
    counters =
      Counter.all ()
      |> List.filter_map (fun c ->
             let v = Counter.value c in
             if v = 0 then None else Some (Counter.name c, v));
    histograms =
      Histogram.all ()
      |> List.filter_map (fun h ->
             let s = Histogram.stats h in
             if s.Histogram.n = 0 then None else Some (Histogram.name h, s));
    spans = Span.aggregate (Span.finished ());
  }

let value name =
  match Counter.find name with Some c -> Counter.value c | None -> 0

let counter_lines counters =
  match counters with
  | [] -> [ "(no counters recorded)" ]
  | _ ->
      let width =
        List.fold_left (fun w (n, _) -> max w (String.length n)) 7 counters
      in
      Printf.sprintf "%-*s %12s" width "counter" "value"
      :: String.make (width + 13) '-'
      :: List.map
           (fun (n, v) -> Printf.sprintf "%-*s %12d" width n v)
           counters

let histogram_lines histograms =
  match histograms with
  | [] -> []
  | _ ->
      let width =
        List.fold_left (fun w (n, _) -> max w (String.length n)) 9 histograms
      in
      Printf.sprintf "%-*s %6s %10s %10s %10s %10s %10s" width "histogram" "n"
        "mean" "p50" "p90" "p99" "max"
      :: String.make (width + 67) '-'
      :: List.map
           (fun (n, s) ->
             Printf.sprintf "%-*s %6d %10.3f %10.3f %10.3f %10.3f %10.3f"
               width n s.Histogram.n s.Histogram.mean s.Histogram.p50
               s.Histogram.p90 s.Histogram.p99 s.Histogram.max)
           histograms

(* Allocation per span name ("per algorithm"): how many words each spanned
   operation allocated, across every execution of that span. *)
let alloc_lines spans =
  let spans =
    List.filter
      (fun ((_ : string), (a : Span.agg)) ->
        a.Span.agg_minor_words <> 0.
        || a.Span.agg_major_words <> 0.
        || a.Span.agg_promoted_words <> 0.)
      spans
  in
  match spans with
  | [] -> []
  | _ ->
      let width =
        List.fold_left (fun w (n, _) -> max w (String.length n)) 4 spans
      in
      Printf.sprintf "%-*s %6s %10s %14s %14s %14s" width "span" "n"
        "total ms" "minor words" "major words" "promoted"
      :: String.make (width + 63) '-'
      :: List.map
           (fun (n, (a : Span.agg)) ->
             Printf.sprintf "%-*s %6d %10.3f %14.0f %14.0f %14.0f" width n
               a.Span.spans a.Span.total_ms a.Span.agg_minor_words
               a.Span.agg_major_words a.Span.agg_promoted_words)
           spans

let render_counters () = String.concat "\n" (counter_lines (snapshot ()).counters)

let render () =
  let snap = snapshot () in
  let sections =
    [ counter_lines snap.counters ]
    @ (match histogram_lines snap.histograms with [] -> [] | ls -> [ ls ])
    @ match alloc_lines snap.spans with [] -> [] | ls -> [ ls ]
  in
  String.concat "\n\n" (List.map (String.concat "\n") sections)

let reset () =
  Counter.reset_all ();
  Histogram.reset_all ()
