(** Leveled structured event log: one JSON object per line (JSONL),
    emitted through the strict {!Json} printer so every line round-trips
    through {!Json.parse_exn}.

    Line schema (version {!schema_version}): every line carries
    [{"v": <schema_version>, "ts": <integer unix epoch milliseconds>,
    "level": "debug"|"info"|"warn"|"error", "event": <string>, ...}]
    followed by event-specific fields.  Adding fields is
    backwards-compatible; renames bump [v].

    Size-based rotation: when appending a line would push the file past
    [max_bytes], the current file is rotated to [path.1] (existing [path.i]
    shifted to [path.(i+1)], the oldest beyond [keep-1] dropped) and a
    fresh [path] is opened.  Rotation is best-effort — rename failures are
    swallowed, logging never takes the process down. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> level option

(** Current line-schema version (2). *)
val schema_version : int

type t

(** [create ?level ?max_bytes ?keep path] opens [path] in append mode
    (creating it at 0644).  [level] (default [Info]) is the minimum level
    written; [max_bytes] (default 8 MiB) the rotation threshold; [keep]
    (default 3) the number of files retained including the live one.
    @raise Invalid_argument on an empty path. *)
val create : ?level:level -> ?max_bytes:int -> ?keep:int -> string -> t

(** Whether a line at this level would be written. *)
val would_log : t -> level -> bool

(** [log t level event fields] appends one line; a no-op below the sink's
    minimum level.  [fields] follow the four standard fields. *)
val log : t -> level -> string -> (string * Json.t) list -> unit

val flush : t -> unit
val close : t -> unit
val path : t -> string
