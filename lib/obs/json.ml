(* A minimal JSON value type with an emitter and a parser.  The single
   authoritative JSON implementation of the observability layer: the trace
   exporter, the metrics exporter, the bench harness and the compare tool
   all go through it, so string escaping cannot drift between emitters and
   a file one tool writes always parses in another. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- emitting --- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ escape s ^ "\""

(* Most strings (event names, trace ids, metric names) contain nothing to
   escape; skip the per-character copy for those.  The emitter sits on the
   server's per-request log path, so these fast paths are load-bearing. *)
let needs_escape s =
  let n = String.length s in
  let rec go i =
    i < n
    &&
    match s.[i] with
    | '"' | '\\' -> true
    | c when Char.code c < 0x20 -> true
    | _ -> go (i + 1)
  in
  go 0

let add_quoted buf s =
  Buffer.add_char buf '"';
  if needs_escape s then Buffer.add_string buf (escape s)
  else Buffer.add_string buf s;
  Buffer.add_char buf '"'

(* JSON has no NaN/infinity; map them to null rather than emit garbage.
   The integer path goes through [string_of_int] rather than
   [Printf.sprintf "%.0f"] — same digits (1e15 is well inside int range),
   a fraction of the cost (no format interpretation). *)
let emit_num buf f =
  if Float.is_nan f || f = infinity || f = neg_infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (string_of_int (int_of_float f))
  else Buffer.add_string buf (Printf.sprintf "%.9g" f)

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> emit_num buf f
  | Str s -> add_quoted buf s
  | Arr vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_quoted buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* Pretty printing with two-space indentation, for files meant to be
   committed and diffed (bench baselines). *)
let to_string_pretty v =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Num _ | Str _) as v -> emit buf v
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr vs ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            go (depth + 1) v)
          vs;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            Buffer.add_string buf (quote k);
            Buffer.add_string buf ": ";
            go (depth + 1) v)
          fields;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* --- parsing --- *)

exception Bad of string

let utf8_of_code_point buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

(* Nesting bound: recursion in the parser is proportional to container
   depth (element/member loops are tail calls), so a hostile input like
   100k '['s would otherwise overflow the stack instead of returning
   [Error].  No legitimate document of ours comes anywhere near this. *)
let max_depth = 512

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let hex4 () =
    let v = ref 0 in
    for _ = 1 to 4 do
      (match peek () with
      | Some ('0' .. '9' as c) -> v := (!v * 16) + (Char.code c - Char.code '0')
      | Some ('a' .. 'f' as c) ->
          v := (!v * 16) + (Char.code c - Char.code 'a' + 10)
      | Some ('A' .. 'F' as c) ->
          v := (!v * 16) + (Char.code c - Char.code 'A' + 10)
      | _ -> fail "bad \\u escape");
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/') as c) ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              (* Surrogate pair: combine a high surrogate with the low one
                 that must follow. *)
              let cp =
                if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n
                   && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  advance ();
                  advance ();
                  let low = hex4 () in
                  if low >= 0xDC00 && low <= 0xDFFF then
                    0x10000 + ((cp - 0xD800) lsl 10) + (low - 0xDC00)
                  else fail "unpaired surrogate"
                end
                else cp
              in
              utf8_of_code_point buf cp;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elements acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' ->
        String.iter expect "true";
        Bool true
    | Some 'f' ->
        String.iter expect "false";
        Bool false
    | Some 'n' ->
        String.iter expect "null";
        Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s = try Ok (parse_exn s) with Bad msg -> Error msg

(* --- accessors --- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let obj_fields = function Obj fields -> fields | _ -> []
let arr_items = function Arr items -> items | _ -> []
