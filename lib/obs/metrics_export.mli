(** Machine-readable export of the full metrics state — counters,
    histogram summaries (with percentiles), per-span duration/allocation
    rollups, and the recording environment — to a stable, versioned JSON
    schema, plus the inverse parser.

    Schema version {!schema_version}; see docs/observability.md for the
    field-by-field description.  A file written by {!write} (or any
    [to_string] output) parses back with {!of_string} into an equal
    value modulo the [environment] of the reading process. *)

type t = {
  environment : (string * string) list;
      (** hostname, ocaml_version, git_rev, timestamp (ISO-8601 UTC),
          word_size — all as strings; unknown values degrade to
          ["unknown"], never to an exception. *)
  counters : (string * int) list;
  histograms : (string * Histogram.stats) list;
  spans : (string * Span.agg) list;
}

val schema_version : int

(** The recording environment of this process. *)
val environment : unit -> (string * string) list

(** Capture the current registries ({!Metrics.snapshot}) plus
    {!environment}. *)
val current : unit -> t

val to_json : t -> Json.t

(** The JSON encoding of one histogram summary / span rollup — the same
    objects that appear in the ["histograms"] / ["spans"] sections.
    Exposed for the bench harness, which embeds them per workload. *)
val histogram_json : Histogram.stats -> Json.t

val span_json : Span.agg -> Json.t

(** Pretty-printed JSON document, trailing newline included. *)
val to_string : t -> string

val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result

(** [write file] = [current] rendered to [file]. *)
val write : string -> unit
