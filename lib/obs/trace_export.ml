(* Render finished span forests.  Three formats:
   - indented text for terminals,
   - JSON lines (one object per span, preorder) for ad-hoc tooling,
   - Chrome trace_event JSON (an array of "X" complete events) loadable in
     chrome://tracing and https://ui.perfetto.dev. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ escape s ^ "\""

let json_attrs attrs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) attrs)
  ^ "}"

let to_text spans =
  let buf = Buffer.create 1024 in
  let rec one depth s =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf (Span.name s);
    Buffer.add_string buf (Printf.sprintf " %.3f ms" (Span.duration_ms s));
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=%s" k v))
      (Span.attrs s);
    Buffer.add_char buf '\n';
    List.iter (one (depth + 1)) (Span.children s)
  in
  List.iter (one 0) spans;
  Buffer.contents buf

let span_object ?depth s =
  let fields =
    [
      ("name", json_string (Span.name s));
      ("start_s", Printf.sprintf "%.6f" (Span.start_s s));
      ("dur_ms", Printf.sprintf "%.6f" (Span.duration_ms s));
    ]
    @ (match depth with
      | Some d -> [ ("depth", string_of_int d) ]
      | None -> [])
    @
    match Span.attrs s with
    | [] -> []
    | attrs -> [ ("attrs", json_attrs attrs) ]
  in
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let to_json_lines spans =
  Span.flatten spans
  |> List.map (fun (depth, s) -> span_object ~depth s)
  |> fun lines -> String.concat "\n" lines ^ (if lines = [] then "" else "\n")

(* Chrome trace_event "X" (complete) events: one per span, with timestamps
   and durations in microseconds.  "X" events carry their own duration, so
   no "B"/"E" pairing is needed and the file stays valid even if a span was
   abandoned open. *)
let chrome_event s =
  let fields =
    [
      ("name", json_string (Span.name s));
      ("cat", json_string "clio");
      ("ph", json_string "X");
      ("ts", Printf.sprintf "%.0f" (Span.start_s s *. 1e6));
      ("dur", Printf.sprintf "%.0f" (Span.duration_s s *. 1e6));
      ("pid", "1");
      ("tid", "1");
    ]
    @
    match Span.attrs s with
    | [] -> []
    | attrs -> [ ("args", json_attrs attrs) ]
  in
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let to_chrome spans =
  let events = Span.flatten spans |> List.map (fun (_, s) -> chrome_event s) in
  "[\n" ^ String.concat ",\n" events ^ "\n]\n"
