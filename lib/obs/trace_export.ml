(* Render finished span forests.  Three formats:
   - indented text for terminals,
   - JSON lines (one object per span, preorder) for ad-hoc tooling,
   - Chrome trace_event JSON (an array of "X" complete events) loadable in
     chrome://tracing and https://ui.perfetto.dev.

   All string escaping goes through {!Json} — the one escaper shared with
   the metrics exporter — so hostile span names and attribute values
   (quotes, backslashes, newlines, control characters) always produce
   parseable output. *)

let json_string = Json.quote

(* The args/attrs payload: user attributes as strings, plus the span's
   allocation delta as numbers (omitted if the span allocated nothing, to
   keep traces of allocation-free spans unchanged). *)
let args_fields s =
  let attrs = List.map (fun (k, v) -> (k, json_string v)) (Span.attrs s) in
  let alloc = Span.alloc s in
  let num f = Printf.sprintf "%.0f" f in
  let alloc_fields =
    if
      alloc.Span.minor_words = 0. && alloc.Span.major_words = 0.
      && alloc.Span.promoted_words = 0.
    then []
    else
      [
        ("minor_words", num alloc.Span.minor_words);
        ("major_words", num alloc.Span.major_words);
        ("promoted_words", num alloc.Span.promoted_words);
      ]
  in
  attrs @ alloc_fields

let args_object s =
  match args_fields s with
  | [] -> None
  | fields ->
      Some
        ("{"
        ^ String.concat ","
            (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
        ^ "}")

let to_text spans =
  let buf = Buffer.create 1024 in
  let rec one depth s =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf (Span.name s);
    Buffer.add_string buf (Printf.sprintf " %.3f ms" (Span.duration_ms s));
    if Span.allocated_words s <> 0. then
      Buffer.add_string buf
        (Printf.sprintf " %.0fw" (Span.allocated_words s));
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=%s" k v))
      (Span.attrs s);
    Buffer.add_char buf '\n';
    List.iter (one (depth + 1)) (Span.children s)
  in
  List.iter (one 0) spans;
  Buffer.contents buf

let span_object ?depth s =
  let fields =
    [
      ("name", json_string (Span.name s));
      ("start_s", Printf.sprintf "%.6f" (Span.start_s s));
      ("dur_ms", Printf.sprintf "%.6f" (Span.duration_ms s));
    ]
    @ (match depth with
      | Some d -> [ ("depth", string_of_int d) ]
      | None -> [])
    @
    match args_object s with
    | None -> []
    | Some o -> [ ("attrs", o) ]
  in
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let to_json_lines spans =
  Span.flatten spans
  |> List.map (fun (depth, s) -> span_object ~depth s)
  |> fun lines -> String.concat "\n" lines ^ (if lines = [] then "" else "\n")

(* Chrome trace_event "X" (complete) events: one per span, with timestamps
   and durations in microseconds.  "X" events carry their own duration, so
   no "B"/"E" pairing is needed and the file stays valid even if a span was
   abandoned open. *)
let chrome_event s =
  let fields =
    [
      ("name", json_string (Span.name s));
      ("cat", json_string "clio");
      ("ph", json_string "X");
      ("ts", Printf.sprintf "%.0f" (Span.start_s s *. 1e6));
      ("dur", Printf.sprintf "%.0f" (Span.duration_s s *. 1e6));
      ("pid", "1");
      ("tid", "1");
    ]
    @
    match args_object s with
    | None -> []
    | Some o -> [ ("args", o) ]
  in
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let to_chrome spans =
  let events = Span.flatten spans |> List.map (fun (_, s) -> chrome_event s) in
  "[\n" ^ String.concat ",\n" events ^ "\n]\n"
