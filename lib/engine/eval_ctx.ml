open Relational
open Fulldisj

type algorithm = Naive | Indexed | Outerjoin_if_tree

let algorithm_name = function
  | Naive -> "naive"
  | Indexed -> "indexed"
  | Outerjoin_if_tree -> "outerjoin-if-tree"

type t = {
  db : Database.t;
  kb : Schemakb.Kb.t;
  cache : Eval_cache.t option;
  algorithm : algorithm;
  incremental : bool;
  jobs : int;
  pool : Par.Pool.t option;
  branch_root : int option;
      (** database version this context's branch forked at — promotions
          from at-or-below it reuse state shared with sibling branches and
          count as [cache.promote.cross_branch.*] *)
}

(* A process-wide default honoured by [create] — how `clio_cli --no-cache`
   reaches every context built behind cmdliner's back. *)
let caching_default = ref true
let set_caching_default b = caching_default := b

(* Same pattern for `--no-incremental`. *)
let incremental_default = ref true
let set_incremental_default b = incremental_default := b

(* Same pattern for `--jobs`; [Par.default_jobs] also reads CLIO_JOBS. *)
let set_jobs_default = Par.set_default_jobs

let create ?(algorithm = Indexed) ?(no_cache = false) ?cache ?incremental ?jobs
    ?kb db =
  let kb = match kb with Some kb -> kb | None -> Schemakb.Kb.of_database db in
  let cache =
    if no_cache || not !caching_default then None
    else
      match cache with Some c -> Some c | None -> Some (Eval_cache.create ())
  in
  let incremental =
    match incremental with Some b -> b | None -> !incremental_default
  in
  let jobs = match jobs with Some j -> j | None -> Par.default_jobs () in
  {
    db;
    kb;
    cache;
    algorithm;
    incremental;
    jobs;
    pool = Par.get_pool ~jobs;
    branch_root = None;
  }

(* Single-shot contexts for the deprecated [Database.t]-taking wrappers:
   no cache, so behaviour (and benchmarks) match the pre-engine code path
   exactly. *)
let transient ?(algorithm = Indexed) db =
  {
    db;
    kb = Schemakb.Kb.empty;
    cache = None;
    algorithm;
    incremental = false;
    jobs = 1;
    pool = None;
    branch_root = None;
  }

let db t = t.db
let kb t = t.kb
let algorithm t = t.algorithm
let cache t = t.cache
let cached t = Option.is_some t.cache
let incremental t = t.incremental
let jobs t = t.jobs
let pool t = t.pool
let lookup t name = Database.find t.db name
let version t = Database.version t.db

let with_db ?kb t db =
  { t with db; kb = (match kb with Some kb -> kb | None -> t.kb) }

let with_kb t kb = { t with kb }
let with_algorithm t algorithm = { t with algorithm }
let without_cache t = { t with cache = None }
let with_jobs t jobs = { t with jobs; pool = Par.get_pool ~jobs }
let branch_root t = t.branch_root
let with_branch_root t v = { t with branch_root = Some v }

let base_source t = Source.of_db t.db

(* --- promotion through the delta chain --------------------------------- *)

(* On a miss at the current version, walk the database's recorded history
   newest-first looking for the same key at an ancestor version.  Along the
   walk we fold the steps into (a) the cumulative inserted tuples per
   relation and (b) the set of poisoned relations (rewritten non-insert-only).
   A [New_relation] step is a no-op here: a graph mentioning the new
   relation cannot have cache entries at versions before it existed, so
   deeper peeks just miss.  Poisoning only grows as the walk deepens, so
   the first ancestor whose entry exists decides the outcome:

   - no graph base touched at all     → promote for free (same payload);
   - touched bases all insert-only    → repair by delta join;
   - any graph base poisoned          → no ancestor can help; recompute.

   [peek] probes the cache at one ancestor version; [free]/[repair] build
   the promoted payload (and bump their counters).  [cross] is the
   cross-branch counter for this tier: on a branched version graph, a
   branch's history runs back through its fork point into the trunk shared
   with sibling branches, so a promotion whose source entry sits at or
   below the context's [branch_root] is warm state inherited across
   branches — typically cached by a sibling session or the shared root. *)
let note_cross_branch t ~cross ~from_version =
  match t.branch_root with
  | Some root when from_version <= root -> Obs.count cross
  | _ -> ()

let promote_via_chain t ~bases ~cross ~peek ~free ~repair =
  let merge_changed pairs =
    List.fold_left
      (fun acc (rel, tups) ->
        match List.assoc_opt rel acc with
        | Some prev -> (rel, prev @ tups) :: List.remove_assoc rel acc
        | None -> (rel, tups) :: acc)
      [] pairs
  in
  let rec walk steps ~changed ~poisoned =
    match steps with
    | [] -> None
    | step :: rest -> (
        let changed, poisoned =
          match step.Delta.kind with
          | Delta.Insert { relation; tuples } ->
              ((relation, tuples) :: changed, poisoned)
          | Delta.Rewrite { relation } -> (changed, relation :: poisoned)
          | Delta.New_relation _ | Delta.Constraints_only -> (changed, poisoned)
        in
        if List.exists (fun b -> List.mem b poisoned) bases then begin
          Obs.count Obs.Names.delta_fallbacks;
          None
        end
        else
          match peek step.Delta.from_version with
          | Some payload -> (
              note_cross_branch t ~cross ~from_version:step.Delta.from_version;
              match
                merge_changed
                  (List.filter (fun (rel, _) -> List.mem rel bases) changed)
              with
              | [] -> Some (free payload)
              | touched -> Some (repair payload ~changed:touched))
          | None -> walk rest ~changed ~poisoned)
  in
  walk (Database.history t.db) ~changed:[] ~poisoned:[]

let graph_bases g =
  Querygraph.Qgraph.nodes g
  |> List.map (fun n -> n.Querygraph.Qgraph.base)
  |> List.sort_uniq String.compare

(* Engine entry spans (engine.fj / engine.dg): tagged with the active
   request scope's trace id so a slow wire request's exemplar trace shows
   exactly which engine evaluations it triggered, and with the cache
   outcome ("hit" | "miss" | "promoted-free" | "promoted-repaired" | "off")
   once known.  One branch when observability is disabled. *)
let with_engine_span name f =
  if not (Obs.enabled ()) then f ()
  else
    Obs.with_span name (fun () ->
        (match Obs.Scope.current () with
        | Some id -> Obs.set_attr "trace_id" id
        | None -> ());
        f ())

let set_cache_attr outcome = if Obs.enabled () then Obs.set_attr "cache" outcome

let full_associations t j =
  with_engine_span Obs.Names.sp_engine_fj @@ fun () ->
  match t.cache with
  | None ->
      set_cache_attr "off";
      Join_eval.full_associations (base_source t) j
  | Some cache -> (
      let version = version t in
      let key = Graph_key.of_graph j in
      match Eval_cache.find_fj cache ~version key with
      | Some r ->
          set_cache_attr "hit";
          r
      | None ->
          let promoted =
            if not t.incremental then None
            else
              promote_via_chain t ~bases:(graph_bases j)
                ~cross:Obs.Names.cache_promote_fj_cross_branch
                ~peek:(fun v -> Eval_cache.peek_fj cache ~version:v key)
                ~free:(fun r ->
                  Obs.count Obs.Names.cache_promote_fj_free;
                  set_cache_attr "promoted-free";
                  r)
                ~repair:(fun r ~changed ->
                  Obs.count Obs.Names.cache_promote_fj_repaired;
                  set_cache_attr "promoted-repaired";
                  let src = Source.with_pool t.pool (base_source t) in
                  Join_eval.canonical
                    (Algebra.union r
                       (Join_eval.full_associations_delta src j ~changed)))
          in
          let r =
            match promoted with
            | Some r -> r
            | None ->
                set_cache_attr "miss";
                Join_eval.full_associations (base_source t) j
          in
          Eval_cache.add_fj cache ~version key r;
          r)

let source t =
  let base = Source.with_pool t.pool (base_source t) in
  match t.cache with
  | None -> base
  | Some _ -> Source.with_fj (full_associations t) base

let run_algorithm t alg g =
  (* The source carries the F(J) hook, so even a D(G)-tier miss reuses
     per-subgraph materializations shared with other graphs. *)
  let src = source t in
  match alg with
  | Naive -> Full_disjunction.naive src g
  | Indexed -> Full_disjunction.compute src g
  | Outerjoin_if_tree ->
      if Outerjoin_plan.is_tree g then Outerjoin_plan.full_disjunction src g
      else Full_disjunction.compute src g

let data_associations ?algorithm t g =
  let alg = match algorithm with Some a -> a | None -> t.algorithm in
  with_engine_span Obs.Names.sp_engine_dg @@ fun () ->
  match t.cache with
  | None ->
      set_cache_attr "off";
      run_algorithm t alg g
  | Some cache -> (
      let version = version t in
      let variant = algorithm_name alg in
      let key = Graph_key.of_graph g in
      match Eval_cache.find_dg cache ~version ~variant key with
      | Some r ->
          set_cache_attr "hit";
          r
      | None ->
          let promoted =
            if not t.incremental then None
            else
              promote_via_chain t ~bases:(graph_bases g)
                ~cross:Obs.Names.cache_promote_dg_cross_branch
                ~peek:(fun v -> Eval_cache.peek_dg cache ~version:v ~variant key)
                ~free:(fun r ->
                  Obs.count Obs.Names.cache_promote_dg_free;
                  set_cache_attr "promoted-free";
                  r)
                ~repair:(fun old ~changed ->
                  Obs.count Obs.Names.cache_promote_dg_repaired;
                  set_cache_attr "promoted-repaired";
                  let src = Source.with_pool t.pool (base_source t) in
                  Full_disjunction.delta src g ~old ~changed)
          in
          let r =
            match promoted with
            | Some r -> r
            | None ->
                set_cache_attr "miss";
                run_algorithm t alg g
          in
          Eval_cache.add_dg cache ~version ~variant key r;
          r)

let possible_associations t g = Full_disjunction.possible_associations (source t) g
