(** Canonical cache keys for query (sub)graphs.

    Two structurally equal graphs — same alias/base nodes, same undirected
    edges, same edge predicates up to conjunct order — produce equal keys
    no matter how they were built or in which order the subgraph enumerator
    visited them.  This is what lets walk/chase alternatives that share an
    induced connected subgraph share its materialized F(J).

    The key is a rendered string: sorted [alias:base] node list, then the
    edge list sorted on the (sorted) endpoint pair, each edge carrying its
    predicate normalized by flattening top-level conjunctions and sorting
    the conjuncts' SQL renderings. *)

type t

val of_graph : Querygraph.Qgraph.t -> t
val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
