open Relational
open Fulldisj

(* --- approximate byte accounting ---------------------------------------

   Resident cost is accounted in columnar units: 8 bytes a cell plus
   fixed per-row/per-relation overhead ({!Relation.footprint_bytes}).
   Cell payloads live in the process-global value pool, shared across
   every resident entry, so they are deliberately not attributed to any
   one of them.  Deterministic, and O(1) for the F(J) tier. *)

let relation_bytes = Relation.footprint_bytes

let result_bytes (r : Full_disjunction.result) =
  let arity = Schema.arity r.Full_disjunction.scheme in
  List.fold_left
    (fun acc (_ : Assoc.t) -> acc + (8 * arity) + 72)
    512 r.Full_disjunction.associations

(* --- the store ---------------------------------------------------------- *)

type payload = Fj of Relation.t | Dg of Full_disjunction.result

type entry = { payload : payload; bytes : int; mutable tick : int }

type t = {
  table : (string, entry) Hashtbl.t;
  budget : int;
  mutable bytes : int;
  mutable clock : int;
  (* One lock around every table/accounting touch.  A cache op is a string
     hash plus an LRU tick — nanoseconds against the millisecond-scale
     F(J)/D(G) computes it fronts — so a single uncontended mutex beats
     per-domain shards here (shards also fracture the LRU and the byte
     budget; see docs/parallelism.md for the measurement).  A concurrent
     miss on the same key may compute the value twice; both computes are
     equal by construction and the second insert simply replaces the
     first. *)
  lock : Mutex.t;
}

let locked t f = Mutex.protect t.lock f

let default_byte_budget = 64 * 1024 * 1024

let create ?(byte_budget = default_byte_budget) () =
  if byte_budget <= 0 then invalid_arg "Eval_cache.create: byte_budget must be > 0";
  {
    table = Hashtbl.create 256;
    budget = byte_budget;
    bytes = 0;
    clock = 0;
    lock = Mutex.create ();
  }

let entry_count t = locked t (fun () -> Hashtbl.length t.table)
let bytes_resident t = locked t (fun () -> t.bytes)
let byte_budget t = t.budget

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.bytes <- 0);
  Obs.Counter.set Obs.Names.cache_bytes_resident 0

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* Keys carry the database version, the canonical graph key and a tier /
   algorithm tag, so entries for stale database states are simply never
   requested again and age out through the LRU. *)
let fj_key ~version key = Printf.sprintf "fj|%d|%s" version (Graph_key.to_string key)

let dg_key ~version ~variant key =
  Printf.sprintf "dg:%s|%d|%s" variant version (Graph_key.to_string key)

let eviction_counter = function
  | Fj _ -> Obs.Names.cache_fj_evictions
  | Dg _ -> Obs.Names.cache_dg_evictions

(* Evict least-recently-used entries until within budget.  O(n) scan per
   eviction; the table is bounded by the byte budget so n stays small. *)
let rec enforce_budget t =
  if t.bytes > t.budget && Hashtbl.length t.table > 0 then begin
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, oldest) when oldest.tick <= e.tick -> acc
          | _ -> Some (k, e))
        t.table None
    in
    match victim with
    | None -> ()
    | Some (k, e) ->
        Hashtbl.remove t.table k;
        t.bytes <- t.bytes - e.bytes;
        Obs.Counter.bump (eviction_counter e.payload);
        enforce_budget t
  end

let insert t key payload bytes =
  let resident =
    locked t (fun () ->
        (match Hashtbl.find_opt t.table key with
        | Some old ->
            Hashtbl.remove t.table key;
            t.bytes <- t.bytes - old.bytes
        | None -> ());
        Hashtbl.replace t.table key { payload; bytes; tick = tick t };
        t.bytes <- t.bytes + bytes;
        enforce_budget t;
        t.bytes)
  in
  Obs.Counter.set Obs.Names.cache_bytes_resident resident

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
          e.tick <- tick t;
          Some e.payload
      | None -> None)

(* --- tier views --------------------------------------------------------- *)

let find_fj t ~version key =
  match find t (fj_key ~version key) with
  | Some (Fj r) ->
      Obs.Counter.bump Obs.Names.cache_fj_hits;
      Some r
  | Some (Dg _) | None ->
      Obs.Counter.bump Obs.Names.cache_fj_misses;
      None

let add_fj t ~version key r = insert t (fj_key ~version key) (Fj r) (relation_bytes r)

let find_dg t ~version ~variant key =
  match find t (dg_key ~version ~variant key) with
  | Some (Dg r) ->
      Obs.Counter.bump Obs.Names.cache_dg_hits;
      Some r
  | Some (Fj _) | None ->
      Obs.Counter.bump Obs.Names.cache_dg_misses;
      None

let add_dg t ~version ~variant key r =
  insert t (dg_key ~version ~variant key) (Dg r) (result_bytes r)

(* Promotion probes: no hit/miss counters (the miss at the current version
   was already counted) and no recency touch — the ancestor entry's age is
   genuine; the *promoted* entry gets fresh recency through [insert]. *)
let peek t key =
  locked t (fun () -> Option.map (fun e -> e.payload) (Hashtbl.find_opt t.table key))

let peek_fj t ~version key =
  match peek t (fj_key ~version key) with Some (Fj r) -> Some r | _ -> None

let peek_dg t ~version ~variant key =
  match peek t (dg_key ~version ~variant key) with Some (Dg r) -> Some r | _ -> None

let mem_fj t ~version key =
  locked t (fun () -> Hashtbl.mem t.table (fj_key ~version key))

let mem_dg t ~version ~variant key =
  locked t (fun () -> Hashtbl.mem t.table (dg_key ~version ~variant key))
