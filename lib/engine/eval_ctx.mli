(** The evaluation context: database + knowledge base + memo cache +
    algorithm choice, bundled into the one value core operators take.

    Before the engine existed every operator took [Database.t] (plus an ad
    hoc [kb:] here and an [?algorithm] there) and recomputed each F(J) and
    D(G) from scratch; the interactive loop (offer alternatives → rotate →
    refine) re-evaluates near-identical graphs constantly, so almost all of
    that work is shared.  A context memoizes both tiers in an
    {!Eval_cache}, keyed by {!Relational.Database.version} and
    {!Graph_key}, and hands the fulldisj layer a {!Fulldisj.Source} whose
    F(J) hook points back at the cache.

    Contexts are cheap immutable records; the cache inside is shared
    mutable state.  [with_db] keeps the cache — version keys make stale
    entries unreachable, so carrying the cache across a database edit is
    both safe and the point (unchanged subgraphs keep hitting). *)

open Relational
open Fulldisj

(** Which D(G) algorithm {!data_associations} runs (see
    {!Fulldisj.Full_disjunction} and {!Fulldisj.Outerjoin_plan}). *)
type algorithm = Naive | Indexed | Outerjoin_if_tree

val algorithm_name : algorithm -> string

type t

(** [create db] — a caching context.  [kb] defaults to the database's
    declared foreign keys ({!Schemakb.Kb.of_database}); [cache] defaults to
    a fresh {!Eval_cache.create}; [no_cache:true] (or a prior
    {!set_caching_default}[ false]) disables memoization entirely. *)
val create :
  ?algorithm:algorithm ->
  ?no_cache:bool ->
  ?cache:Eval_cache.t ->
  ?incremental:bool ->
  ?jobs:int ->
  ?kb:Schemakb.Kb.t ->
  Database.t ->
  t

(** A cache-less, empty-kb context — what the deprecated [Database.t]
    wrappers use so single-shot evaluation behaves exactly as before the
    engine existed. *)
val transient : ?algorithm:algorithm -> Database.t -> t

(** Process-wide default for [create]'s caching (true initially).  The CLI
    maps [--no-cache] onto this so every context built downstream complies. *)
val set_caching_default : bool -> unit

(** Process-wide default for [create]'s [?incremental] (true initially) —
    the CLI maps [--no-incremental] onto this.  When incremental
    maintenance is on, a cache miss at the current database version first
    tries to *promote* an entry cached at a recorded ancestor version
    through the delta chain ({!Relational.Database.deltas_from}): entries
    whose graph touches none of the changed relations are reused as-is
    ([cache.promote.*.free]); entries touched only by insert-only steps
    are repaired by a delta join ([cache.promote.*.repaired],
    {!Fulldisj.Full_disjunction.delta}); anything touched by a rewrite
    falls back to recomputation ([delta.fallbacks]).  Results are
    byte-identical to from-scratch evaluation either way. *)
val set_incremental_default : bool -> unit

(** Process-wide default for [create]'s [?jobs] — how the CLI's [--jobs]
    reaches every context built downstream.  Same as
    {!Par.set_default_jobs}; the initial default also honours the
    [CLIO_JOBS] environment variable. *)
val set_jobs_default : int -> unit

val db : t -> Database.t
val kb : t -> Schemakb.Kb.t
val algorithm : t -> algorithm
val cache : t -> Eval_cache.t option
val cached : t -> bool

(** Whether this context promotes ancestor-version cache entries (see
    {!set_incremental_default}).  Only meaningful when [cached]. *)
val incremental : t -> bool

(** Parallelism this context evaluates with ([1] = sequential, the
    default).  [jobs > 1] attaches the shared {!Par} pool of that size;
    results are identical to sequential evaluation by construction
    ({!Par.map} is order-preserving). *)
val jobs : t -> int

val pool : t -> Par.Pool.t option
val lookup : t -> string -> Relation.t option
val version : t -> int

(** Swap the database, keeping cache and algorithm.  [kb] defaults to the
    current one (a replaced relation keeps its constraints); pass a new one
    when the schema changed. *)
val with_db : ?kb:Schemakb.Kb.t -> t -> Database.t -> t

val with_kb : t -> Schemakb.Kb.t -> t
val with_algorithm : t -> algorithm -> t
val without_cache : t -> t
val with_jobs : t -> int -> t

(** The database version this context's branch forked from the trunk at,
    if it belongs to a branch of a {{!section-branching} version store}.
    Promotion is oblivious to it — a branch's recorded history already
    runs back through the fork into trunk versions shared with sibling
    branches — but promotions sourced at or below the root are counted as
    [cache.promote.cross_branch.{fj,dg}]: warm state inherited across
    branches through a common ancestor rather than recomputed per
    branch. *)
val branch_root : t -> int option

val with_branch_root : t -> int -> t

(** The {!Fulldisj.Source} this context evaluates through: the database's
    lookup plus (when caching) the F(J) memo hook — the [of_ctx]
    constructor promised in {!Fulldisj.Source}'s documentation. *)
val source : t -> Source.t

(** Memoized F(J) for a connected subgraph. *)
val full_associations : t -> Querygraph.Qgraph.t -> Relation.t

(** Memoized D(G) for a graph under the context's (or the overriding)
    algorithm. *)
val data_associations :
  ?algorithm:algorithm -> t -> Querygraph.Qgraph.t -> Full_disjunction.result

(** S(G) through the context's source (F(J) tier only — S(G) is a test
    oracle, not worth a tier). *)
val possible_associations : t -> Querygraph.Qgraph.t -> Full_disjunction.result
