(** The memo store behind {!Eval_ctx}: a single LRU bounded by an
    approximate byte budget, holding two tiers of evaluation results.

    - {e F(J) tier} — the materialized join of one induced connected
      subgraph.  Shared across different query graphs (walk/chase
      alternatives contain mostly the same subgraphs).
    - {e D(G) tier} — a whole {!Fulldisj.Full_disjunction.result} per
      (graph, algorithm) pair.

    Keys combine the database {e version} ({!Relational.Database.version})
    with the canonical {!Graph_key}, so a mutated database simply stops
    hitting old entries and the stale ones age out of the LRU; nothing is
    ever served across versions.

    Lookups bump the [cache.fj.*] / [cache.dg.*] counters and the
    [cache.bytes_resident] gauge in {!Obs.Names} unconditionally (they are
    [Counter.bump]-style; reading them still requires [--stats] /
    [--metrics] surfaces).

    The store is domain-safe: every operation takes an internal mutex, so
    one cache may be shared by all domains of a [Par] pool.  Two domains
    missing the same key concurrently may compute the value twice; the
    results are equal by construction and the second insert replaces the
    first — hit/miss counters stay consistent (every lookup is counted
    exactly once). *)

open Relational
open Fulldisj

type t

val default_byte_budget : int

(** Raises [Invalid_argument] when [byte_budget <= 0]. *)
val create : ?byte_budget:int -> unit -> t

val find_fj : t -> version:int -> Graph_key.t -> Relation.t option
val add_fj : t -> version:int -> Graph_key.t -> Relation.t -> unit

val find_dg :
  t -> version:int -> variant:string -> Graph_key.t -> Full_disjunction.result option

val add_dg :
  t -> version:int -> variant:string -> Graph_key.t -> Full_disjunction.result -> unit

(** Promotion probes for the incremental path: like [find_*] but counting
    no hit/miss and leaving LRU recency untouched — an ancestor-version
    entry's age is genuine until its promoted copy is re-inserted at the
    current version. *)

val peek_fj : t -> version:int -> Graph_key.t -> Relation.t option

val peek_dg :
  t -> version:int -> variant:string -> Graph_key.t -> Full_disjunction.result option

(** Introspection (tests, [clio_cli stats]).  [mem_*] do not touch LRU
    recency and count no hit/miss. *)

val mem_fj : t -> version:int -> Graph_key.t -> bool
val mem_dg : t -> version:int -> variant:string -> Graph_key.t -> bool
val entry_count : t -> int
val bytes_resident : t -> int
val byte_budget : t -> int
val clear : t -> unit
