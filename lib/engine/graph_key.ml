open Relational
module Qgraph = Querygraph.Qgraph

type t = string

let to_string k = k
let equal = String.equal
let compare = String.compare

(* [Qgraph.add_edge] conjoins predicates when an edge is added twice, so
   the same logical edge can carry [And (p, q)] or [And (q, p)] depending
   on construction order.  Flatten the top-level conjunction and sort the
   conjuncts' SQL renderings to erase that history. *)
let normalized_pred p =
  let rec conjuncts p acc =
    match p with
    | Predicate.And (a, b) -> conjuncts a (conjuncts b acc)
    | p -> p :: acc
  in
  match conjuncts p [] with
  | [ p ] -> Predicate.to_sql p
  | ps -> String.concat " AND " (List.sort String.compare (List.map Predicate.to_sql ps))

let of_graph g =
  let buf = Buffer.create 128 in
  (* [Qgraph.nodes] is sorted by alias already. *)
  List.iter
    (fun (n : Qgraph.node) ->
      Buffer.add_string buf n.alias;
      Buffer.add_char buf ':';
      Buffer.add_string buf n.base;
      Buffer.add_char buf ';')
    (Qgraph.nodes g);
  Buffer.add_char buf '|';
  let edges =
    Qgraph.edges g
    |> List.map (fun (e : Qgraph.edge) ->
           let a, b =
             if String.compare e.n1 e.n2 <= 0 then (e.n1, e.n2) else (e.n2, e.n1)
           in
           Printf.sprintf "%s--%s[%s]" a b (normalized_pred e.pred))
    |> List.sort String.compare
  in
  List.iter
    (fun e ->
      Buffer.add_string buf e;
      Buffer.add_char buf ';')
    edges;
  Buffer.contents buf
