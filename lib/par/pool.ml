type t = {
  pool_jobs : int;
  mutable workers : unit Domain.t array;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_available : Condition.t;
  mutable stop : bool;
}

(* Workers pull tasks FIFO until [stop] is raised with the queue empty.
   After each task the worker publishes its domain-local observability
   state ([Obs.Domains.flush_worker]), so by the time a batch runner has
   counted a task as completed its counters and spans are already
   visible process-wide. *)
let worker_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.work_available t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      (try task () with _ -> ());
      Obs.Domains.flush_worker ();
      loop ()
    end
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      pool_jobs = jobs;
      workers = [||];
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_available = Condition.create ();
      stop = false;
    }
  in
  t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.pool_jobs
let workers t = Array.length t.workers

let submit t task =
  Mutex.lock t.mutex;
  Queue.push task t.queue;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]
