(* A sharded submit/notify executor: K worker domains, one FIFO queue per
   shard.  Tasks submitted to the same shard run serially in submission
   order; distinct shards run concurrently.  This is the server's request
   execution plane — the event loop pins every session (strictly: every
   version store) to one shard, which is what turns "per-session serial,
   cross-session parallel" into a queueing discipline instead of a locking
   problem.

   Unlike [Pool] (batch combinators with a caller that participates and
   joins), this executor is fire-and-forget: the submitter never blocks.
   Completed tasks signal the owner through the [notify] callback — the
   server loop points it at a self-pipe so a blocked [Unix.select] wakes
   the moment a reply is ready. *)

type t = {
  shard_count : int;
  (* (submit time, task) per shard, FIFO *)
  queues : (float * (unit -> unit)) Queue.t array;
  mutex : Mutex.t;
  conds : Condition.t array;  (* one per shard: work available / stopping *)
  idle : Condition.t;  (* signalled when [in_flight] returns to 0 *)
  mutable in_flight : int;  (* submitted and not yet finished *)
  mutable stopping : bool;
  mutable domains : unit Domain.t array;
  notify : unit -> unit;
  (* Read by the owner's stats/gauge refresh from outside the mutex. *)
  dispatched_total : int Atomic.t;
  busy_now : int Atomic.t;
  wait_us_total : int Atomic.t;
}

(* Per-shard worker: pull, run (exceptions are the task's own business —
   the server's tasks catch everything and turn it into an error reply),
   publish domain-local Obs state, account, notify. *)
let worker_loop t shard =
  let q = t.queues.(shard) in
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty q && not t.stopping do
      Condition.wait t.conds.(shard) t.mutex
    done;
    if Queue.is_empty q then Mutex.unlock t.mutex
    else begin
      let submitted_at, task = Queue.pop q in
      Mutex.unlock t.mutex;
      let waited_us =
        int_of_float ((Unix.gettimeofday () -. submitted_at) *. 1e6)
      in
      Atomic.fetch_and_add t.wait_us_total (max 0 waited_us) |> ignore;
      Atomic.incr t.busy_now;
      (try task () with _ -> ());
      Obs.Domains.flush_worker ();
      Atomic.decr t.busy_now;
      Mutex.lock t.mutex;
      t.in_flight <- t.in_flight - 1;
      if t.in_flight = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.mutex;
      (try t.notify () with _ -> ());
      loop ()
    end
  in
  loop ()

let create ~workers ~notify =
  let shard_count = max 1 workers in
  let t =
    {
      shard_count;
      queues = Array.init shard_count (fun _ -> Queue.create ());
      mutex = Mutex.create ();
      conds = Array.init shard_count (fun _ -> Condition.create ());
      idle = Condition.create ();
      in_flight = 0;
      stopping = false;
      domains = [||];
      notify;
      dispatched_total = Atomic.make 0;
      busy_now = Atomic.make 0;
      wait_us_total = Atomic.make 0;
    }
  in
  t.domains <-
    Array.init shard_count (fun shard ->
        Domain.spawn (fun () -> worker_loop t shard));
  t

let shards t = t.shard_count

let submit t ~shard task =
  let shard = ((shard mod t.shard_count) + t.shard_count) mod t.shard_count in
  let submitted_at = Unix.gettimeofday () in
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Workers.submit: executor is shut down"
  end;
  t.in_flight <- t.in_flight + 1;
  Queue.push (submitted_at, task) t.queues.(shard);
  Condition.signal t.conds.(shard);
  Mutex.unlock t.mutex;
  Atomic.incr t.dispatched_total

let in_flight t = Mutex.protect t.mutex (fun () -> t.in_flight)

let drain t =
  Mutex.lock t.mutex;
  while t.in_flight > 0 do
    Condition.wait t.idle t.mutex
  done;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Array.iter Condition.broadcast t.conds;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

let dispatched t = Atomic.get t.dispatched_total
let busy t = Atomic.get t.busy_now
let wait_ms t = Atomic.get t.wait_us_total / 1000
