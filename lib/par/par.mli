(** Deterministic data-parallel combinators over a {!Pool} of domains.

    [Par.map ?pool f xs] evaluates [f] over [xs] with results landing by
    input index, so its output is always exactly [List.map f xs] — same
    order, and on exceptions the one raised is the lowest-index item's,
    regardless of execution interleaving.  Without a pool (or on
    single-item input) it {e is} [List.map].

    The caller participates in its own batch: items are pulled from a
    shared cursor by the caller and by helper tasks on the pool, so a
    nested [map] (an item that itself fans out) can always make progress
    by draining its own batch — the pool being busy can slow a batch down
    but never deadlock it.

    Observability composes: workers flush their domain-local counters and
    span trees per completed item, and a batch run from the main domain
    adopts all worker spans into the current trace before returning
    ({!Obs.Domains}). *)

module Pool = Pool

(** The sharded submit/notify executor behind the server's concurrent
    request plane ([clio_serve --workers]). *)
module Workers = Workers

(** [jobs] below this or a missing pool mean sequential execution. *)
val sequential : Pool.t option

(** The process-default jobs count: initialised from the [CLIO_JOBS]
    environment variable (default [1]), overridable by the CLI's
    [--jobs].  Clamped to [1..64]. *)
val default_jobs : unit -> int

val set_default_jobs : int -> unit

(** [get_pool ~jobs] returns the shared process pool for that parallelism
    ([None] when [jobs <= 1]).  Pools are created on first use, reused per
    jobs count, and shut down at process exit. *)
val get_pool : jobs:int -> Pool.t option

(** [map ?pool f xs] — [List.map f xs], parallel over [pool] when given. *)
val map : ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list

(** [mapi ?pool f xs] — [List.mapi f xs], parallel over [pool]. *)
val mapi : ?pool:Pool.t -> (int -> 'a -> 'b) -> 'a list -> 'b list

(** [iter ?pool f xs] — [List.iter f xs]; parallel, unordered execution,
    but exceptions still deterministic (lowest index wins). *)
val iter : ?pool:Pool.t -> ('a -> unit) -> 'a list -> unit

(** [map_array ?pool f xs] — [Array.map f xs] with the same guarantees. *)
val map_array : ?pool:Pool.t -> ('a -> 'b) -> 'a array -> 'b array

(** [init ?pool n f] — [Array.init n f], evaluated in index chunks so each
    batch item amortizes bookkeeping over many cheap [f] calls.  [f] must
    be safe to call in any order from any domain. *)
val init : ?pool:Pool.t -> int -> (int -> 'a) -> 'a array
