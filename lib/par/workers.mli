(** A sharded submit/notify executor: [workers] domains, one FIFO queue
    each.  Tasks submitted to the same shard run serially in submission
    order; distinct shards run concurrently.  The server loop uses this as
    its request execution plane, pinning every session's store to a shard
    — per-session serial, cross-session parallel.

    Fire-and-forget, unlike the {!Pool} batch combinators: {!submit} never
    blocks, and each completed task invokes the executor's [notify]
    callback from the worker domain (the server points it at a self-pipe
    write, waking its blocked [select]).  Workers flush their domain-local
    observability state ({!Obs.Domains.flush_worker}) after every task. *)

type t

(** [create ~workers ~notify] spawns [max 1 workers] domains.  [notify]
    runs on a worker domain after each task finishes (its exceptions are
    swallowed); it must be domain-safe and fast. *)
val create : workers:int -> notify:(unit -> unit) -> t

val shards : t -> int

(** [submit t ~shard task] enqueues [task] on [shard mod shards t].  Tasks
    on one shard execute in submission order.  [task]'s exceptions are
    swallowed — wrap it if you need to observe them.  Raises
    [Invalid_argument] after {!shutdown}. *)
val submit : t -> shard:int -> (unit -> unit) -> unit

(** Tasks submitted and not yet finished (queued or running). *)
val in_flight : t -> int

(** Blocks until every submitted task has finished.  Does not stop the
    workers: more work may be submitted afterwards. *)
val drain : t -> unit

(** Stops the workers after their queues empty and joins the domains. *)
val shutdown : t -> unit

(** Monitoring, readable from any domain: tasks ever submitted, tasks
    executing right now, and cumulative submit-to-start queue wait in
    milliseconds. *)
val dispatched : t -> int

val busy : t -> int
val wait_ms : t -> int
