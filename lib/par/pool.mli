(** A fixed-size pool of worker domains fed from one mutex/condvar work
    queue.

    A pool sized [~jobs] spawns [jobs - 1] domains: the caller of
    {!Par.map} participates in its own batches, so total parallelism is
    [jobs] and a pool is never an extra thread of control sitting idle.
    Submitted tasks must not raise — batch runners trap exceptions
    per-item themselves. *)

type t

(** [create ~jobs] spawns [max 0 (jobs - 1)] worker domains. *)
val create : jobs:int -> t

(** The parallelism this pool was sized for (including the caller). *)
val jobs : t -> int

(** Number of spawned worker domains, [jobs t - 1]. *)
val workers : t -> int

(** Enqueue a task.  Tasks run in FIFO order as workers free up. *)
val submit : t -> (unit -> unit) -> unit

(** Stop accepting work, drain the queue, and join all workers.
    Idempotent. *)
val shutdown : t -> unit
