module Pool = Pool
module Workers = Workers

let sequential = None

(* --- batch runner --- *)

(* One batch = one shared cursor over the item array.  The caller and up to
   [Pool.workers pool] helper tasks race on the cursor; every item's result
   (or exception) lands in its input slot, so assembly order is independent
   of execution order.  Helpers flush their observability state *before*
   counting an item completed, and the caller only reads results after
   seeing [completed = n] under the batch mutex — that lock pairing is what
   publishes both the result slots and the worker-side Obs state. *)
let run_batch pool items f =
  let n = Array.length items in
  let results = Array.make n None in
  let errors = Array.make n None in
  let mutex = Mutex.create () in
  let batch_done = Condition.create () in
  let next = ref 0 in
  let completed = ref 0 in
  let grab () =
    Mutex.lock mutex;
    let i = !next in
    if i < n then incr next;
    Mutex.unlock mutex;
    if i < n then Some i else None
  in
  let mark () =
    Mutex.lock mutex;
    incr completed;
    if !completed = n then Condition.broadcast batch_done;
    Mutex.unlock mutex
  in
  let run_item i =
    match f items.(i) with
    | v -> results.(i) <- Some v
    | exception e -> errors.(i) <- Some e
  in
  let helper () =
    let rec go () =
      match grab () with
      | None -> ()
      | Some i ->
          run_item i;
          Obs.Domains.flush_worker ();
          mark ();
          go ()
    in
    go ()
  in
  for _ = 1 to min (Pool.workers pool) (n - 1) do
    Pool.submit pool helper
  done;
  let rec drain () =
    match grab () with
    | None -> ()
    | Some i ->
        run_item i;
        mark ();
        drain ()
  in
  drain ();
  Mutex.lock mutex;
  while !completed < n do
    Condition.wait batch_done mutex
  done;
  Mutex.unlock mutex;
  (* The caller adopts parked worker state whatever domain it runs on —
     the server executes requests (and so batches) on worker domains, and
     never adopting there would leak parked spans.  Under concurrent
     batches adoption is best-effort attribution: a caller can graft
     another in-flight batch's just-parked helper spans into its own open
     span.  Histogram replay is internally locked, so this is safe. *)
  Obs.Domains.adopt_pending ();
  Array.iteri
    (fun _ e -> match e with Some e -> raise e | None -> ())
    errors;
  Array.map
    (function Some v -> v | None -> assert false (* completed = n *))
    results

(* --- process-wide pool registry --- *)

let max_jobs = 64
let clamp_jobs j = max 1 (min max_jobs j)

let jobs_ref =
  ref
    (match Sys.getenv_opt "CLIO_JOBS" with
    | Some s -> ( match int_of_string_opt (String.trim s) with
                  | Some j -> clamp_jobs j
                  | None -> 1)
    | None -> 1)

let default_jobs () = !jobs_ref
let set_default_jobs j = jobs_ref := clamp_jobs j

let pools : (int, Pool.t) Hashtbl.t = Hashtbl.create 4
let pools_mutex = Mutex.create ()

let shutdown_all () =
  let ps =
    Mutex.protect pools_mutex (fun () ->
        let ps = Hashtbl.fold (fun _ p acc -> p :: acc) pools [] in
        Hashtbl.reset pools;
        ps)
  in
  List.iter Pool.shutdown ps

let () = at_exit shutdown_all

let get_pool ~jobs =
  let jobs = clamp_jobs jobs in
  if jobs <= 1 then None
  else
    Some
      (Mutex.protect pools_mutex (fun () ->
           match Hashtbl.find_opt pools jobs with
           | Some p -> p
           | None ->
               let p = Pool.create ~jobs in
               Hashtbl.replace pools jobs p;
               p))

(* --- combinators --- *)

let map_array ?pool f xs =
  match pool with
  | None -> Array.map f xs
  | Some p -> if Array.length xs <= 1 then Array.map f xs else run_batch p xs f

let map ?pool f xs =
  match (pool, xs) with
  | None, _ | _, ([] | [ _ ]) -> List.map f xs
  | Some p, _ -> Array.to_list (run_batch p (Array.of_list xs) f)

let mapi ?pool f xs =
  match (pool, xs) with
  | None, _ | _, ([] | [ _ ]) -> List.mapi f xs
  | Some p, _ ->
      Array.to_list
        (run_batch p (Array.of_list (List.mapi (fun i x -> (i, x)) xs))
           (fun (i, x) -> f i x))

let init ?pool n f =
  match pool with
  | None -> Array.init n f
  | Some p ->
      (* Chunked so one batch item amortizes the per-item bookkeeping over
         many cheap [f] calls (subsumption checks, keep-flags).  4 chunks
         per job keeps the tail balanced without oversubmitting. *)
      let chunk = max 64 ((n + (4 * Pool.jobs p) - 1) / (4 * Pool.jobs p)) in
      if n <= chunk then Array.init n f
      else begin
        let ranges = ref [] in
        let lo = ref 0 in
        while !lo < n do
          ranges := (!lo, min n (!lo + chunk)) :: !ranges;
          lo := !lo + chunk
        done;
        let parts =
          run_batch p
            (Array.of_list (List.rev !ranges))
            (fun (lo, hi) -> Array.init (hi - lo) (fun i -> f (lo + i)))
        in
        Array.concat (Array.to_list parts)
      end

let iter ?pool f xs =
  match (pool, xs) with
  | None, _ | _, ([] | [ _ ]) -> List.iter f xs
  | Some p, _ -> ignore (run_batch p (Array.of_list xs) f : unit array)
