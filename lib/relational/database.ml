type t = {
  version : int;  (** monotonic identity stamp; distinct contents ⇒ distinct version *)
  rels : (string * Relation.t) list;  (** insertion order *)
  by_name : (string, Relation.t) Hashtbl.t;
  constraints : Integrity.t list;
}

(* Versions are drawn from a process-global counter so that any two
   databases built by different construction paths never share a stamp.
   [empty] is the sole exception: it is version 0 and safe to share. *)
let next_version =
  let n = ref 0 in
  fun () ->
    incr n;
    !n

let empty = { version = 0; rels = []; by_name = Hashtbl.create 16; constraints = [] }
let version t = t.version

let add t r =
  let name = Relation.name r in
  if Hashtbl.mem t.by_name name then
    invalid_arg ("Database.add: duplicate relation " ^ name);
  let by_name = Hashtbl.copy t.by_name in
  Hashtbl.add by_name name r;
  { t with version = next_version (); rels = t.rels @ [ (name, r) ]; by_name }

let add_constraint t c =
  { t with version = next_version (); constraints = t.constraints @ [ c ] }

let replace t r =
  let name = Relation.name r in
  if not (Hashtbl.mem t.by_name name) then
    invalid_arg ("Database.replace: unknown relation " ^ name);
  let by_name = Hashtbl.copy t.by_name in
  Hashtbl.replace by_name name r;
  let rels =
    List.map (fun (n, old) -> if n = name then (n, r) else (n, old)) t.rels
  in
  { t with version = next_version (); rels; by_name }

let of_relations ?(constraints = []) rels =
  let t = List.fold_left add empty rels in
  List.fold_left add_constraint t constraints

let find t name = Hashtbl.find_opt t.by_name name

let get t name =
  match find t name with Some r -> r | None -> raise Not_found

let mem t name = Hashtbl.mem t.by_name name
let relations t = List.map snd t.rels
let relation_names t = List.map fst t.rels
let constraints t = t.constraints

let foreign_keys t =
  List.filter (function Integrity.Foreign_key _ -> true | _ -> false) t.constraints

let check t =
  List.concat_map (Integrity.check ~lookup:(find t)) t.constraints

let cell_count t =
  List.fold_left
    (fun acc (_, r) -> acc + (Relation.cardinality r * Schema.arity (Relation.schema r)))
    0 t.rels

let find_value_in r v =
  if Value.is_null v then []
  else
    let name = Relation.name r in
    let schema = Relation.schema r in
    Array.to_list (Schema.attrs schema)
    |> List.filter_map (fun a ->
           let i = Schema.index schema a in
           let count =
             Relation.fold
               (fun acc tup -> if Value.equal tup.(i) v then acc + 1 else acc)
               0 r
           in
           if count > 0 then Some (name, a.Attr.name, count) else None)

let find_value t v = List.concat_map (fun (_, r) -> find_value_in r v) t.rels
