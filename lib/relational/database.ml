type t = {
  version : int;  (** monotonic identity stamp; distinct contents ⇒ distinct version *)
  rels : (string * Relation.t) list;  (** insertion order *)
  by_name : (string, Relation.t) Hashtbl.t;
  constraints : Integrity.t list;
  history : Delta.t list;  (** newest-first, bounded by {!history_limit} *)
  limit : int option;
      (** per-database changelog bound; [None] defers to the process
          default at each recording *)
}

(* Versions are drawn from a process-global counter so that any two
   databases built by different construction paths never share a stamp.
   [empty] is the sole exception: it is version 0 and safe to share.
   Atomic: the server commits mutations from several worker domains at
   once, and a duplicated stamp would alias two distinct databases in the
   version-keyed evaluation cache. *)
let next_version =
  let n = Atomic.make 0 in
  fun () -> 1 + Atomic.fetch_and_add n 1

(* Deep edit histories stop paying for themselves: walking a long chain
   costs about as much as recomputing, and cached entries that old have
   usually been evicted anyway.  Beyond the bound the oldest steps are
   dropped, which soundly degrades [deltas_from] to "unknown ancestry". *)
let default_history_limit = 32
let history_limit_ref = ref default_history_limit
let process_history_limit () = !history_limit_ref

let set_history_limit n =
  if n < 1 then invalid_arg "Database.set_history_limit: limit must be >= 1";
  history_limit_ref := n

let empty =
  {
    version = 0;
    rels = [];
    by_name = Hashtbl.create 16;
    constraints = [];
    history = [];
    limit = None;
  }

let version t = t.version

let history_limit t =
  match t.limit with Some n -> n | None -> process_history_limit ()

let with_history_limit t n =
  if n < 1 then invalid_arg "Database.with_history_limit: limit must be >= 1";
  { t with limit = Some n }

let record t kind =
  let to_version = next_version () in
  Obs.count Obs.Names.delta_records;
  let step = { Delta.from_version = t.version; to_version; kind } in
  let limit = history_limit t in
  let history =
    if List.length t.history >= limit then begin
      Obs.count Obs.Names.delta_history_evicted;
      step :: List.filteri (fun i _ -> i < limit - 1) t.history
    end
    else step :: t.history
  in
  (to_version, history)

let add t r =
  let name = Relation.name r in
  if Hashtbl.mem t.by_name name then
    invalid_arg ("Database.add: duplicate relation " ^ name);
  let by_name = Hashtbl.copy t.by_name in
  Hashtbl.add by_name name r;
  let version, history = record t (Delta.New_relation name) in
  { t with version; rels = t.rels @ [ (name, r) ]; by_name; history }

let add_constraint t c =
  let version, history = record t Delta.Constraints_only in
  { t with version; constraints = t.constraints @ [ c ]; history }

(* A replace is repairable when the new instance is a pure superset of
   the old one over the same scheme: cached joins only need the new
   tuples folded in.  Anything else (removals, changed schema) is a
   rewrite and poisons cached results that touch the relation. *)
let diff_kind ~old_r ~new_r =
  let name = Relation.name old_r in
  if not (Schema.equal (Relation.schema old_r) (Relation.schema new_r)) then
    Delta.Rewrite { relation = name }
  else begin
    let new_set = Relation.Tuple_tbl.create (Relation.cardinality new_r) in
    Relation.iter (fun tup -> Relation.Tuple_tbl.replace new_set tup ()) new_r;
    let removed =
      Relation.fold
        (fun acc tup -> acc || not (Relation.Tuple_tbl.mem new_set tup))
        false old_r
    in
    if removed then Delta.Rewrite { relation = name }
    else begin
      let old_set = Relation.Tuple_tbl.create (Relation.cardinality old_r) in
      Relation.iter (fun tup -> Relation.Tuple_tbl.replace old_set tup ()) old_r;
      let added =
        Relation.fold
          (fun acc tup ->
            if Relation.Tuple_tbl.mem old_set tup then acc else tup :: acc)
          [] new_r
        |> List.rev
      in
      Delta.Insert { relation = name; tuples = added }
    end
  end

let replace t r =
  let name = Relation.name r in
  let old_r =
    match Hashtbl.find_opt t.by_name name with
    | Some old_r -> old_r
    | None -> invalid_arg ("Database.replace: unknown relation " ^ name)
  in
  let by_name = Hashtbl.copy t.by_name in
  Hashtbl.replace by_name name r;
  let rels =
    List.map (fun (n, old) -> if n = name then (n, r) else (n, old)) t.rels
  in
  let version, history = record t (diff_kind ~old_r ~new_r:r) in
  { t with version; rels; by_name; history }

let insert_tuples t name tuples =
  let old_r =
    match Hashtbl.find_opt t.by_name name with
    | Some r -> r
    | None -> invalid_arg ("Database.insert_tuples: unknown relation " ^ name)
  in
  let old_set = Relation.Tuple_tbl.create (Relation.cardinality old_r) in
  Relation.iter (fun tup -> Relation.Tuple_tbl.replace old_set tup ()) old_r;
  let fresh =
    List.filter
      (fun tup ->
        if Relation.Tuple_tbl.mem old_set tup then false
        else begin
          (* also dedup within the batch itself *)
          Relation.Tuple_tbl.replace old_set tup ();
          true
        end)
      tuples
  in
  if fresh = [] then t
  else begin
    let r =
      Relation.create (Relation.name old_r) (Relation.schema old_r)
        (Relation.tuples old_r @ fresh)
    in
    let by_name = Hashtbl.copy t.by_name in
    Hashtbl.replace by_name name r;
    let rels =
      List.map (fun (n, old) -> if n = name then (n, r) else (n, old)) t.rels
    in
    let version, history =
      record t (Delta.Insert { relation = name; tuples = fresh })
    in
    { t with version; rels; by_name; history }
  end

let history t = t.history

let deltas_from t ancestor_version =
  if ancestor_version = t.version then Some []
  else
    let rec take acc = function
      | [] -> None (* fell off the recorded window: unknown ancestry *)
      | step :: rest ->
          if step.Delta.to_version < ancestor_version then None
          else if step.Delta.from_version = ancestor_version then
            Some (step :: acc)
          else take (step :: acc) rest
    in
    take [] t.history

let of_relations ?history_limit ?(constraints = []) rels =
  let seed =
    match history_limit with
    | None -> empty
    | Some n -> with_history_limit empty n
  in
  let t = List.fold_left add seed rels in
  List.fold_left add_constraint t constraints

let find t name = Hashtbl.find_opt t.by_name name

let get t name =
  match find t name with Some r -> r | None -> raise Not_found

let mem t name = Hashtbl.mem t.by_name name
let relations t = List.map snd t.rels
let relation_names t = List.map fst t.rels
let constraints t = t.constraints

let foreign_keys t =
  List.filter (function Integrity.Foreign_key _ -> true | _ -> false) t.constraints

let check t =
  List.concat_map (Integrity.check ~lookup:(find t)) t.constraints

let cell_count t =
  List.fold_left
    (fun acc (_, r) -> acc + (Relation.cardinality r * Schema.arity (Relation.schema r)))
    0 t.rels

let find_value_in r v =
  if Value.is_null v then []
  else
    let name = Relation.name r in
    let schema = Relation.schema r in
    Array.to_list (Schema.attrs schema)
    |> List.filter_map (fun a ->
           let i = Schema.index schema a in
           let count =
             Relation.fold
               (fun acc tup -> if Value.equal tup.(i) v then acc + 1 else acc)
               0 r
           in
           if count > 0 then Some (name, a.Attr.name, count) else None)

let find_value t v = List.concat_map (fun (_, r) -> find_value_in r v) t.rels
