(** One step of a database changelog: what changed between two adjacent
    versions.

    {!Database} records one [Delta.t] per constructing operation so the
    evaluation engine can ask "what happened between version v and v'?"
    instead of only "did anything change?".  The discrimination that
    matters downstream is between {e insert-only} steps — cached results
    can be repaired by joining the new tuples in — and everything else,
    which forces the affected relation to be recomputed from scratch. *)

type kind =
  | Insert of { relation : string; tuples : Tuple.t list }
      (** Tuples added to an existing relation; every tuple listed is
          genuinely new (absent at [from_version]).  The repairable case. *)
  | Rewrite of { relation : string }
      (** The relation was replaced by something that is not a pure
          superset (removals, changed schema, …): cached results touching
          it cannot be repaired. *)
  | New_relation of string
      (** A relation appeared.  Query graphs always resolve every alias,
          so results cached before the relation existed never mention it —
          but the name is recorded for completeness. *)
  | Constraints_only
      (** Only integrity constraints changed; every cached instance-level
          result is still exact. *)

type t = { from_version : int; to_version : int; kind : kind }

(** Does this step mention the given base relation at all? *)
val touches_relation : t -> string -> bool

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit
