(* Shared batch kernels over interned int columns.

   A "column set" here is [int array array]: one int array per attribute,
   all of equal length (the row count), each cell a {!Value_pool}
   structural id (0 = null).  Wherever rows must be *compared* — dedup,
   join keys, subsumption — kernels first map cells through
   {!Value_pool.class_of} so that the comparison agrees with
   [Value.equal], exactly as the boxed path's [Value.Table]-keyed
   hashtables did. *)

(* Growable int buffer for building output columns row by row. *)
module Ibuf = struct
  type t = { mutable a : int array; mutable len : int }

  let create capacity = { a = Array.make (max capacity 16) 0; len = 0 }

  let push b x =
    if b.len = Array.length b.a then begin
      let a = Array.make (2 * b.len) 0 in
      Array.blit b.a 0 a 0 b.len;
      b.a <- a
    end;
    b.a.(b.len) <- x;
    b.len <- b.len + 1

  let contents b = Array.sub b.a 0 b.len
end

(* While the pool has no cross-constructor aliases, class ids equal
   structural ids and the input arrays are returned as-is (callers treat
   class columns as read-only). *)
let class_column col =
  if Value_pool.classes_trivial () then col
  else Array.map Value_pool.class_of col

let class_columns cols =
  if Value_pool.classes_trivial () then cols else Array.map class_column cols

let nrows cols = if Array.length cols = 0 then 0 else Array.length cols.(0)

(* Hash of row [i] over class columns; mixing mirrors no particular boxed
   hash — it only keys internal tables. *)
let row_hash cls i =
  let h = ref 7 in
  for c = 0 to Array.length cls - 1 do
    h := (!h * 31) + cls.(c).(i)
  done;
  !h land max_int

let rows_equal cls i j =
  let k = Array.length cls in
  let rec go c = c = k || (cls.(c).(i) = cls.(c).(j) && go (c + 1)) in
  go 0

(* Indices of rows to keep under set semantics (first occurrence wins, as
   in the boxed [Tuple_tbl] dedup); [None] when already duplicate-free so
   callers can reuse the input columns as-is. *)
let dedup_keep_first cols =
  let n = nrows cols in
  let cls = class_columns cols in
  (* Open-addressing set of kept rows keyed by row hash: slots hold
     row index + 1 (0 = empty), linear probing.  Flat int arrays keep
     the million-row dedup allocation-free. *)
  let cap =
    let rec up c = if c >= 2 * (n + 1) then c else up (2 * c) in
    up 16
  in
  let mask = cap - 1 in
  let slots = Array.make cap 0 in
  let keep = Ibuf.create n in
  let dropped = ref false in
  (* [row_hash] is nearly sequential on dense id columns; without a
     finalizer, linear probing degrades to giant primary clusters. *)
  let mix h =
    let h = h lxor (h lsr 31) in
    let h = h * 0x2545F4914F6CDD1D in
    (h lsr 16) land max_int
  in
  for i = 0 to n - 1 do
    let s = ref (mix (row_hash cls i) land mask) in
    let continue = ref true in
    while !continue do
      match slots.(!s) with
      | 0 ->
          slots.(!s) <- i + 1;
          Ibuf.push keep i;
          continue := false
      | j1 ->
          if rows_equal cls i (j1 - 1) then begin
            dropped := true;
            continue := false
          end
          else s := (!s + 1) land mask
    done
  done;
  if !dropped then Some (Ibuf.contents keep) else None

(* Select rows (by index, in order) out of a column set. *)
let gather cols rows =
  Array.map (fun col -> Array.map (fun i -> col.(i)) rows) cols

(* Vertical concatenation of column sets sharing one arity. *)
let concat sets =
  match sets with
  | [] -> [||]
  | first :: _ ->
      let arity = Array.length first in
      Array.init arity (fun c ->
          Array.concat (List.map (fun cols -> cols.(c)) sets))

(* Rows in Value.compare order, column-major left to right — the columnar
   image of sorting boxed tuples with [Tuple.compare].  The comparator has
   no ties on deduplicated inputs (compare's kernel is the class
   relation), so the unstable sort is still deterministic there. *)
let sort_rows_canonical cols =
  let n = nrows cols in
  let arity = Array.length cols in
  if n <= 1 || arity = 0 then cols
  else begin
    (* Column 0 decides almost every comparison; its flat sort keys are
       extracted once so the comparator's hot path is two array reads
       instead of pool lookups.  Key ties fall back to the exact
       id-level compare, column by column. *)
    let c0 = cols.(0) in
    let tag0 = Bytes.create n and num0 = Array.make n 0. in
    for i = 0 to n - 1 do
      let t, f = Value_pool.sort_key c0.(i) in
      Bytes.set tag0 i t;
      num0.(i) <- f
    done;
    let rest i j =
      let rec go c =
        if c = arity then 0
        else
          let d = Value_pool.compare_resolved cols.(c).(i) cols.(c).(j) in
          if d <> 0 then d else go (c + 1)
      in
      go 1
    in
    let cmp i j =
      let a = c0.(i) and b = c0.(j) in
      let d =
        if a = b then 0
        else
          let ct = Char.compare (Bytes.get tag0 i) (Bytes.get tag0 j) in
          if ct <> 0 then ct
          else
            let cf = Float.compare num0.(i) num0.(j) in
            if cf <> 0 then cf else Value_pool.compare_resolved a b
      in
      if d <> 0 then d else rest i j
    in
    (* Sortedness structure: join outputs arrive fully sorted (left rows
       ascending), and category unions are a handful of sorted runs
       concatenated.  One O(n) scan finds the run boundaries; one run is
       a no-op, a few runs bottom-up merge in O(n log runs).  On
       deduplicated input the comparator has no ties (dedup is
       class-wise and the comparator's kernel is the class relation), so
       the merge result coincides with a full sort. *)
    let starts = Ibuf.create 8 in
    Ibuf.push starts 0;
    for i = 1 to n - 1 do
      if cmp (i - 1) i > 0 then Ibuf.push starts i
    done;
    let bounds = Ibuf.contents starts in
    let runs = Array.length bounds in
    if runs = 1 then cols
    else if runs <= 64 then begin
      let src = ref (Array.init n Fun.id) and dst = ref (Array.make n 0) in
      let bounds = ref (Array.to_list bounds @ [ n ]) in
      while List.length !bounds > 2 do
        let rec pass acc = function
          | a :: b :: c :: rest ->
              (* merge src[a..b) and src[b..c) into dst[a..c) *)
              let i = ref a and j = ref b and k = ref a in
              while !i < b && !j < c do
                if cmp !src.(!i) !src.(!j) <= 0 then begin
                  !dst.(!k) <- !src.(!i);
                  incr i
                end
                else begin
                  !dst.(!k) <- !src.(!j);
                  incr j
                end;
                incr k
              done;
              while !i < b do
                !dst.(!k) <- !src.(!i);
                incr i;
                incr k
              done;
              while !j < c do
                !dst.(!k) <- !src.(!j);
                incr j;
                incr k
              done;
              pass (c :: acc) (c :: rest)
          | [ a; b ] ->
              Array.blit !src a !dst a (b - a);
              pass (b :: acc) [ b ]
          | [ _ ] | [] -> List.rev acc
        in
        bounds := pass [ List.hd !bounds ] !bounds;
        let t = !src in
        src := !dst;
        dst := t
      done;
      gather cols !src
    end
    else begin
      let idx = Array.init n Fun.id in
      Array.sort cmp idx;
      gather cols idx
    end
  end

(* Row indices grouped by cell value — the columnar counterpart of the
   boxed per-column [Value.Table] indexes.  When the value space is dense
   relative to the row count (the common case: class ids from a pool the
   rows themselves populated) the groups are built by counting sort over
   flat int arrays — two passes, no hashing, no per-row allocation.  A
   hashtable fallback covers sparse ids (a small relation over a huge
   pool).  Value 0 (null) is never indexed. *)
module Buckets = struct
  type t = {
    rows : int array;  (* row indices, grouped by value, ascending within a group *)
    base : int;  (* dense: smallest indexed value; starts is offset by it *)
    starts : int array;  (* dense: group of [v] is rows.[starts.(v-base) .. starts.(v-base+1)) *)
    table : (int, int * int) Hashtbl.t option;  (* sparse: value -> (start, len) *)
  }

  let make col =
    let n = Array.length col in
    let minv = ref max_int and maxv = ref 0 and nonnull = ref 0 in
    for i = 0 to n - 1 do
      let v = col.(i) in
      if v <> 0 then begin
        incr nonnull;
        if v > !maxv then maxv := v;
        if v < !minv then minv := v
      end
    done;
    let base = if !nonnull = 0 then 1 else !minv in
    let width = !maxv - base + 2 in
    if width <= (4 * n) + 1024 then begin
      let starts = Array.make (max width 2) 0 in
      Array.iter
        (fun v -> if v <> 0 then starts.(v - base + 1) <- starts.(v - base + 1) + 1)
        col;
      for k = 1 to Array.length starts - 1 do
        starts.(k) <- starts.(k) + starts.(k - 1)
      done;
      let cursor = Array.copy starts in
      let rows = Array.make !nonnull 0 in
      Array.iteri
        (fun i v ->
          if v <> 0 then begin
            rows.(cursor.(v - base)) <- i;
            cursor.(v - base) <- cursor.(v - base) + 1
          end)
        col;
      { rows; base; starts; table = None }
    end
    else begin
      let counts = Hashtbl.create 64 in
      Array.iter
        (fun v ->
          if v <> 0 then
            Hashtbl.replace counts v
              (1 + Option.value (Hashtbl.find_opt counts v) ~default:0))
        col;
      let table = Hashtbl.create (Hashtbl.length counts) in
      let next = ref 0 in
      Hashtbl.iter
        (fun v c ->
          Hashtbl.replace table v (!next, c);
          next := !next + c)
        counts;
      let cursor = Hashtbl.copy table in
      let rows = Array.make !nonnull 0 in
      Array.iteri
        (fun i v ->
          if v <> 0 then begin
            let start, len = Hashtbl.find cursor v in
            rows.(start) <- i;
            Hashtbl.replace cursor v (start + 1, len)
          end)
        col;
      { rows; base = 0; starts = [||]; table = Some table }
    end

  (* (start, len) of [v]'s group within [rows t]; (0, 0) if absent. *)
  let span t v =
    match t.table with
    | Some table -> (
        match Hashtbl.find_opt table v with Some s -> s | None -> (0, 0))
    | None ->
        let k = v - t.base in
        if v <= 0 || k < 0 || k + 1 >= Array.length t.starts then (0, 0)
        else (t.starts.(k), t.starts.(k + 1) - t.starts.(k))

  let count t v = snd (span t v)
  let rows t = t.rows
end

(* Per-row non-null bitmask over class/structural columns (null iff cell
   0, in either representation).  Only valid for arity <= bits available;
   callers gate on [mask_arity_limit]. *)
let mask_arity_limit = Sys.int_size - 2

let nonnull_masks cols =
  let n = nrows cols in
  let arity = Array.length cols in
  let masks = Array.make n 0 in
  for c = 0 to arity - 1 do
    let col = cols.(c) and bit = 1 lsl c in
    for i = 0 to n - 1 do
      if col.(i) <> 0 then masks.(i) <- masks.(i) lor bit
    done
  done;
  masks
