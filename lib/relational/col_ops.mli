(** Shared batch kernels over interned int columns.

    A column set is [int array array]: one int array per attribute, all
    of equal length (the row count), cells holding {!Value_pool}
    structural ids (0 = null).  Comparisons (dedup, sorting, masks) go
    through {!Value_pool.class_of} so they agree with [Value.equal]. *)

(** Growable int buffer for building output columns row by row. *)
module Ibuf : sig
  type t

  val create : int -> t
  val push : t -> int -> unit
  val contents : t -> int array
end

(** Map a structural-id column to its class-id image. *)
val class_column : int array -> int array

val class_columns : int array array -> int array array

(** Row count of a column set ([0] for arity 0). *)
val nrows : int array array -> int

(** Hash of row [i] over class columns. *)
val row_hash : int array array -> int -> int

(** Class-wise row equality. *)
val rows_equal : int array array -> int -> int -> bool

(** Set-semantic dedup, first occurrence wins: kept row indices in order,
    or [None] when the input was already duplicate-free. *)
val dedup_keep_first : int array array -> int array option

(** Select rows by index, in order. *)
val gather : int array array -> int array -> int array array

(** Vertical concatenation of column sets sharing one arity. *)
val concat : int array array list -> int array array

(** Rows reordered into [Value.compare] order (the columnar image of
    sorting boxed tuples with [Tuple.compare]); deterministic on
    deduplicated inputs. *)
val sort_rows_canonical : int array array -> int array array

(** Row indices grouped by cell value — the columnar counterpart of a
    per-column [Value.Table] index.  Built by counting sort over flat int
    arrays when the value space is dense relative to the row count (no
    hashing, no per-row allocation), falling back to a hashtable for
    sparse ids.  Value 0 (null) is never indexed. *)
module Buckets : sig
  type t

  val make : int array -> t

  (** [(start, len)] of [v]'s group within {!rows}; [(0, 0)] if absent. *)
  val span : t -> int -> int * int

  (** Group size of [v] — probe selectivity, O(1). *)
  val count : t -> int -> int

  (** The grouped row indices, ascending within each group. *)
  val rows : t -> int array
end

(** Largest arity [nonnull_masks] supports. *)
val mask_arity_limit : int

(** Per-row bitmask with bit [c] set iff column [c] is non-null. *)
val nonnull_masks : int array array -> int array
