(** Atomic attribute values, including SQL-style [Null].

    Values are the leaves of the relational model used throughout the
    reproduction.  Comparison follows SQL intuition where it matters for the
    paper's definitions: [Null] never equals anything under
    {!sql_eq} (so join predicates are {e strong} in the sense of Section 3 of
    the paper), while {!compare} provides an arbitrary but consistent total
    order used for sorting and indexing. *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

(** Equality as the kernel of {!compare}: [equal a b] iff [compare a b = 0].
    [Null] equals [Null], [Int]s and [Float]s coincide when numerically
    equal, and NaN equals NaN.  Used for set semantics of relations and for
    subsumption, where two null fields agree. *)
val equal : t -> t -> bool

(** Total order over values (constructor rank first, payload second;
    [Int]s and [Float]s are compared numerically across constructors). *)
val compare : t -> t -> int

(** The constructor rank {!compare} orders by first: 0 [Null], 1 [Bool],
    2 numeric ([Int] and [Float] share a rank), 3 [String]. *)
val rank : t -> int

(** SQL-flavoured equality used by predicates: [None] when either side is
    [Null] (unknown), [Some b] otherwise. *)
val sql_eq : t -> t -> bool option

(** SQL-flavoured ordering used by predicates: [None] when either side is
    [Null], otherwise [Some c] with [c] as {!compare} restricted to
    like-kinded values (numeric across [Int]/[Float]). *)
val sql_compare : t -> t -> int option

val is_null : t -> bool

(** Best-effort numeric view; [None] for non-numeric or [Null]. *)
val to_float : t -> float option

(** Arithmetic lifted over values; [Null] propagates, non-numeric operands
    yield [Null]. Integer arithmetic is preserved when both sides are [Int]. *)
val add : t -> t -> t

val sub : t -> t -> t
val mul : t -> t -> t

(** String concatenation; [Null] if either operand is [Null]; non-string
    operands are rendered with {!to_string} first. *)
val concat : t -> t -> t

(** Rendering used by table printers and SQL generation ([Null] prints as
    ["null"], strings unquoted). *)
val to_string : t -> string

(** SQL literal rendering (strings single-quoted, [Null] as [NULL]).
    Non-finite floats (nan, infinities) have no SQL literal and render as
    [NULL]. *)
val to_sql : t -> string

(** Parse a CSV cell: empty or ["null"] is [Null]; otherwise tries [Int],
    [Float], [Bool], falling back to [String]. *)
val of_csv_cell : string -> t

val pp : Format.formatter -> t -> unit

(** Consistent with {!equal}: [equal a b] implies [hash a = hash b] (numeric
    values hash through their float image, NaNs and signed zeros collapse). *)
val hash : t -> int

(** Hashtables keyed by values under {!equal}/{!hash} — every value-keyed
    index must use these (or {!compare}-based sorting), never the polymorphic
    [Hashtbl], which would disagree with {!equal} on mixed numerics and
    NaN. *)
module Table : Hashtbl.S with type key = t

(** Hashtables keyed by composite value keys (e.g. multi-column join keys). *)
module Key_table : Hashtbl.S with type key = t list
