(* A relation carries up to two interchangeable representations of the
   same rows, built lazily from one another and memoized:

   - the *boxed* view: an array of [Tuple.t] (what the pre-columnar code
     stored), still the substrate for predicates, rendering and every
     tuple-level accessor;
   - the *columnar* view: one int array per attribute holding
     {!Value_pool} structural ids (0 = null), the substrate for the batch
     operator kernels.

   Constructors record whichever representation they were given; the
   other materializes on first demand.  Both views describe the same row
   sequence in the same order, and because interning is a structural
   round-trip ([Value_pool.resolve (intern v)] is [v] bit-for-bit),
   boxing a columnar relation renders byte-identically to the original.

   The memo fields are written at most once per representation with a
   single pointer store; a concurrent second computation (two Par domains
   forcing the same view) produces an equal array and the last store
   wins — benign. *)

type t = {
  name : string;
  schema : Schema.t;
  nrows : int;
  mutable boxed : Tuple.t array option;
  mutable cols : int array array option;
}

module Tuple_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let dedup_list tuples =
  let seen = Tuple_tbl.create (List.length tuples) in
  List.filter
    (fun t ->
      if Tuple_tbl.mem seen t then false
      else begin
        Tuple_tbl.add seen t ();
        true
      end)
    tuples

let validate ~ctor ~allow_all_null name schema tuples =
  let n = Schema.arity schema in
  List.iter
    (fun t ->
      if Tuple.arity t <> n then
        invalid_arg
          (Printf.sprintf "%s %s: tuple arity %d, schema arity %d" ctor name
             (Tuple.arity t) n);
      if (not allow_all_null) && n > 0 && Tuple.all_null t then
        invalid_arg (Printf.sprintf "%s %s: all-null tuple" ctor name))
    tuples

let create ?(dedup = true) ?(allow_all_null = false) name schema tuples =
  validate ~ctor:"Relation.create" ~allow_all_null name schema tuples;
  let tuples = if dedup then dedup_list tuples else tuples in
  let arr = Array.of_list tuples in
  { name; schema; nrows = Array.length arr; boxed = Some arr; cols = None }

let of_columns ?(dedup = true) ?(allow_all_null = false) name schema cols =
  let arity = Schema.arity schema in
  if Array.length cols <> arity then
    invalid_arg
      (Printf.sprintf "Relation.of_columns %s: %d columns, schema arity %d" name
         (Array.length cols) arity);
  let n = Col_ops.nrows cols in
  Array.iteri
    (fun c col ->
      if Array.length col <> n then
        invalid_arg
          (Printf.sprintf "Relation.of_columns %s: column %d length %d, expected %d"
             name c (Array.length col) n))
    cols;
  if (not allow_all_null) && arity > 0 then
    for i = 0 to n - 1 do
      let all_null = ref true in
      for c = 0 to arity - 1 do
        if cols.(c).(i) <> 0 then all_null := false
      done;
      if !all_null then
        invalid_arg (Printf.sprintf "Relation.of_columns %s: all-null tuple" name)
    done;
  let cols =
    if not dedup then cols
    else
      match Col_ops.dedup_keep_first cols with
      | None -> cols
      | Some keep -> Col_ops.gather cols keep
  in
  { name; schema; nrows = Col_ops.nrows cols; boxed = None; cols = Some cols }

let tuples_array t =
  match t.boxed with
  | Some arr -> arr
  | None ->
      let cols = Option.get t.cols in
      let arity = Schema.arity t.schema in
      let arr =
        Array.init t.nrows (fun i ->
            Array.init arity (fun c -> Value_pool.resolve cols.(c).(i)))
      in
      t.boxed <- Some arr;
      arr

let columns t =
  match t.cols with
  | Some cols -> cols
  | None ->
      let arr = Option.get t.boxed in
      let cols = Value_pool.intern_rows arr ~arity:(Schema.arity t.schema) in
      t.cols <- Some cols;
      cols

let name t = t.name
let schema t = t.schema
let tuples t = Array.to_list (tuples_array t)
let cardinality t = t.nrows
let is_empty t = t.nrows = 0
let mem t tup = Array.exists (Tuple.equal tup) (tuples_array t)
let iter f t = Array.iter f (tuples_array t)
let fold f init t = Array.fold_left f init (tuples_array t)

let filter p t =
  let arr = Array.of_list (List.filter p (tuples t)) in
  { t with nrows = Array.length arr; boxed = Some arr; cols = None }

let with_name name t = { t with name }

let rename_rel t ~from ~into =
  { t with schema = Schema.rename_rel t.schema ~from ~into }

let column_values t a =
  let i = Schema.index t.schema a in
  let seen = Value.Table.create 16 in
  fold
    (fun acc tup ->
      let v = tup.(i) in
      if Value.is_null v || Value.Table.mem seen v then acc
      else begin
        Value.Table.add seen v ();
        v :: acc
      end)
    [] t
  |> List.rev

let equal_contents a b =
  Schema.equal a.schema b.schema
  && cardinality a = cardinality b
  &&
  let set = Tuple_tbl.create (cardinality b) in
  Array.iter (fun t -> Tuple_tbl.replace set t ()) (tuples_array b);
  Array.for_all (fun t -> Tuple_tbl.mem set t) (tuples_array a)

(* Columnar footprint: what the relation costs once resident as columns —
   8 bytes per cell plus per-column and record overhead.  The value pool
   is process-global and shared across every resident relation, so its
   bytes are deliberately not attributed here.  Used by the engine's
   cache accounting; deterministic and O(1). *)
let footprint_bytes t =
  let arity = Schema.arity t.schema in
  256 + (arity * 24) + (8 * arity * t.nrows)

let pp ppf t =
  Format.fprintf ppf "%s%a {@[<v>%a@]}" t.name Schema.pp t.schema
    (Format.pp_print_list Tuple.pp)
    (tuples t)
