type t = { name : string; schema : Schema.t; tuples : Tuple.t array }

module Tuple_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let dedup tuples =
  let seen = Tuple_tbl.create (List.length tuples) in
  List.filter
    (fun t ->
      if Tuple_tbl.mem seen t then false
      else begin
        Tuple_tbl.add seen t ();
        true
      end)
    tuples

let make ?(allow_all_null = false) name schema tuples =
  let n = Schema.arity schema in
  List.iter
    (fun t ->
      if Tuple.arity t <> n then
        invalid_arg
          (Printf.sprintf "Relation.make %s: tuple arity %d, schema arity %d" name
             (Tuple.arity t) n);
      if (not allow_all_null) && n > 0 && Tuple.all_null t then
        invalid_arg (Printf.sprintf "Relation.make %s: all-null tuple" name))
    tuples;
  { name; schema; tuples = Array.of_list (dedup tuples) }

let make_of_array ?(allow_all_null = false) name schema tuples =
  let n = Schema.arity schema in
  Array.iter
    (fun t ->
      if Tuple.arity t <> n then
        invalid_arg
          (Printf.sprintf "Relation.make_of_array %s: tuple arity %d, schema arity %d"
             name (Tuple.arity t) n);
      if (not allow_all_null) && n > 0 && Tuple.all_null t then
        invalid_arg (Printf.sprintf "Relation.make_of_array %s: all-null tuple" name))
    tuples;
  let len = Array.length tuples in
  let seen = Tuple_tbl.create len in
  let unique = ref 0 in
  Array.iter
    (fun t ->
      if not (Tuple_tbl.mem seen t) then begin
        Tuple_tbl.add seen t ();
        incr unique
      end)
    tuples;
  let tuples =
    if !unique = len then tuples
    else begin
      (* Rare path: duplicates present.  Re-walk with a fresh table,
         keeping first occurrences in order. *)
      let out = Array.make !unique [||] in
      let keep = Tuple_tbl.create !unique in
      let j = ref 0 in
      Array.iter
        (fun t ->
          if not (Tuple_tbl.mem keep t) then begin
            Tuple_tbl.add keep t ();
            out.(!j) <- t;
            incr j
          end)
        tuples;
      out
    end
  in
  { name; schema; tuples }

let of_array_unsafe name schema tuples = { name; schema; tuples }
let name t = t.name
let schema t = t.schema
let tuples t = Array.to_list t.tuples
let tuples_array t = t.tuples
let cardinality t = Array.length t.tuples
let is_empty t = Array.length t.tuples = 0
let mem t tup = Array.exists (Tuple.equal tup) t.tuples
let iter f t = Array.iter f t.tuples
let fold f init t = Array.fold_left f init t.tuples
let filter p t = { t with tuples = Array.of_list (List.filter p (tuples t)) }
let with_name name t = { t with name }

let rename_rel t ~from ~into =
  { t with schema = Schema.rename_rel t.schema ~from ~into }

let column_values t a =
  let i = Schema.index t.schema a in
  let seen = Value.Table.create 16 in
  fold
    (fun acc tup ->
      let v = tup.(i) in
      if Value.is_null v || Value.Table.mem seen v then acc
      else begin
        Value.Table.add seen v ();
        v :: acc
      end)
    [] t
  |> List.rev

let equal_contents a b =
  Schema.equal a.schema b.schema
  && cardinality a = cardinality b
  &&
  let set = Tuple_tbl.create (cardinality b) in
  Array.iter (fun t -> Tuple_tbl.replace set t ()) b.tuples;
  Array.for_all (fun t -> Tuple_tbl.mem set t) a.tuples

let pp ppf t =
  Format.fprintf ppf "%s%a {@[<v>%a@]}" t.name Schema.pp t.schema
    (Format.pp_print_list Tuple.pp)
    (tuples t)
