(** Process-wide switch for the columnar operator kernels.

    On by default; [CLIO_NO_COLUMNAR=1] in the environment or
    {!set_enabled}[ false] routes every operator through the boxed
    [Tuple.t] path instead (the bench ablation).  Results are
    byte-identical either way; only speed changes. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** Run [f] with the switch forced to [b], restoring the previous state
    (used by the parity tests and the bench ablation arms). *)
val with_enabled : bool -> (unit -> 'a) -> 'a
