(** Global value-intern table: the heart of the columnar data plane.

    Each distinct {!Value.t} gets a process-global int id; columnar
    relations store ids and operator kernels compare ints.  Two notions of
    identity are tracked:

    - {b structural} identity (bit-exact; floats keyed by IEEE bits)
      assigns ids, so [resolve (intern v)] is structurally [v] and renders
      byte-identically — the columnar pipeline prints exactly what the
      boxed pipeline prints.
    - {b class} identity quotients ids by {!Value.equal}: [Int 1] and
      [Float 1.0] share a class, NaNs share a class, signed zeros share a
      class.  Anywhere the boxed path used [Value.equal]/[Value.hash]
      (join keys, set dedup, subsumption), kernels compare [class_of]
      images instead.

    Laws (tested in [test_columnar.ml]):
    - [intern (resolve id) = id] and [resolve (intern v)] structural-equal
      to [v];
    - [class_of (intern a) = class_of (intern b)] iff [Value.equal a b];
    - [class_of null_id = null_id], and an id is null iff it equals
      {!null_id}.

    The pool is domain-safe: writes are mutex-protected, reads are
    lock-free (chunked storage; chunks never move). Ids are never
    recycled; the pool grows monotonically for the process lifetime. *)

(** The id of [Value.Null]: always [0], so a column cell is null iff 0. *)
val null_id : int

val is_null : int -> bool

(** Intern one value (idempotent). *)
val intern : Value.t -> int

(** Intern a whole tuple under one lock acquisition. *)
val intern_tuple : Tuple.t -> int array

(** Intern a tuple array into per-attribute columns (one lock
    acquisition): [intern_rows rows ~arity] returns [arity] columns of
    [Array.length rows] ids each. *)
val intern_rows : Tuple.t array -> arity:int -> int array array

(** The value interned at this id (structural round-trip). *)
val resolve : int -> Value.t

(** Representative id of the {!Value.equal}-class of this id. *)
val class_of : int -> int

(** Number of distinct interned values (including [Null]). *)
val size : unit -> int

(** Alias of {!size}, matching the exported gauge name
    [value_pool.count]. *)
val count : unit -> int

(** Approximate retained bytes: a fixed per-id charge (chunk slots plus
    hashtable entries) plus string payload lengths.  Monotone — the pool
    never evicts. *)
val footprint_bytes : unit -> int

(** Publish {!count} and {!footprint_bytes} as the [value_pool.count] /
    [value_pool.bytes] Obs gauges (no-op while observability is
    disabled).  Called by stats/scrape endpoints so every reading is
    fresh at scrape time. *)
val observe : unit -> unit

(** {!Value.compare} lifted to ids; [0] exactly for class-equal ids. *)
val compare_resolved : int -> int -> int

(** The flat sort key of an interned id: constructor-rank tag (as a char,
    {!Value.rank} order) and float image of numerics/bools (0. for nulls
    and strings).  Keys order ids exactly as {!compare_resolved} up to
    ties — key-equal ids still need the exact compare. *)
val sort_key : int -> char * float

(** [true] while every interned id is its own class representative — no
    cross-constructor equal pair ([Int 1] / [Float 1.0], say) has been
    interned yet.  While trivial, class columns are identity and kernels
    may use structural columns directly.  Monotone: once [false], stays
    [false]. *)
val classes_trivial : unit -> bool
