(* Global value-intern table: every distinct Value.t observed by the data
   plane gets a small int id; columns store ids, so operator kernels
   compare ints instead of walking boxed values.

   Two identities coexist, and the pool tracks both:

   - *structural* identity assigns the id.  It is bit-exact (floats are
     keyed by their IEEE bit pattern), so [resolve (intern v)] returns a
     value that renders byte-identically to [v] — [Int 1], [Float 1.0],
     [Float (-0.)] and differently-payloaded NaNs all hold distinct ids.
     This is what makes a columnar pipeline print exactly what the boxed
     pipeline prints.

   - *class* identity quotients ids by {!Value.equal} (the kernel of
     {!Value.compare}): [Int 1] and [Float 1.0] share a class, every NaN
     shares a class, the signed zeros share a class.  Joins, set-semantic
     dedup and subsumption — everywhere the boxed path consulted
     [Value.equal]/[Value.hash] — compare class ids instead.

   The class of an id is the id of the first-interned member of its
   equivalence class, so [class_of] is idempotent and [Null]'s class is
   {!null_id}.

   Concurrency: the pool is process-global and written under one mutex.
   Reads ([resolve]/[class_of]) are lock-free against chunked storage —
   chunks are never moved once allocated, only the chunk directory grows
   (by replacement, so a stale directory still resolves every id it ever
   covered).  Ids only travel between domains through synchronized
   channels (Par joins), which publishes the writes behind them. *)

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits
let chunk_mask = chunk_size - 1

module Struct_key = struct
  type t = Value.t

  let equal a b =
    match (a, b) with
    | Value.Null, Value.Null -> true
    | Value.Int a, Value.Int b -> Int.equal a b
    | Value.Bool a, Value.Bool b -> Bool.equal a b
    | Value.String a, Value.String b -> String.equal a b
    | Value.Float a, Value.Float b ->
        Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
    | _ -> false

  let hash = function
    | Value.Null -> 17
    | Value.Int i -> Hashtbl.hash (1, i)
    | Value.Float f -> Hashtbl.hash (2, Int64.bits_of_float f)
    | Value.String s -> Hashtbl.hash (3, s)
    | Value.Bool b -> Hashtbl.hash (4, b)
end

module Struct_tbl = Hashtbl.Make (Struct_key)

type pool = {
  mutable values : Value.t array array;
  mutable classes : int array array;
  (* Flat sort keys making {!compare_resolved} array-read cheap: [tags]
     holds {!Value.rank} (0 null / 1 bool / 2 numeric / 3 string), [nums]
     the float image of numerics and bools.  Ties fall back to the boxed
     compare, which keeps large-int precision and string order exact. *)
  mutable tags : Bytes.t array;
  mutable nums : float array array;
  mutable count : int;
  (* Approximate retained footprint: a fixed per-id charge for the chunk
     slots and hashtable entries, plus string payload bytes.  Maintained
     incrementally so a scrape never walks the table. *)
  mutable bytes : int;
  (* Set the first time an id's class differs from the id itself ([Int 1]
     then [Float 1.0]); until then class columns are identity. *)
  mutable aliased : bool;
  ids : int Struct_tbl.t;
  class_ids : int Value.Table.t;
  lock : Mutex.t;
}

let null_id = 0

(* Per-id retained cost: two chunk slots (value + class word), the tag
   byte and num float, and the two hashtable entries (struct + class key)
   — call it 64 bytes of fixed overhead — plus the string payload, the
   only per-value allocation whose size varies. *)
let bytes_of v =
  64 + (match v with Value.String s -> String.length s | _ -> 0)

let pool =
  let p =
    {
      values = Array.make 16 [||];
      classes = Array.make 16 [||];
      tags = Array.make 16 Bytes.empty;
      nums = Array.make 16 [||];
      count = 0;
      bytes = 0;
      aliased = false;
      ids = Struct_tbl.create 1024;
      class_ids = Value.Table.create 1024;
      lock = Mutex.create ();
    }
  in
  p.values.(0) <- Array.make chunk_size Value.Null;
  p.classes.(0) <- Array.make chunk_size 0;
  p.tags.(0) <- Bytes.make chunk_size '\000';
  p.nums.(0) <- Array.make chunk_size 0.;
  (* Null is always id 0 (and class 0): a column cell is null iff it is 0. *)
  Struct_tbl.add p.ids Value.Null 0;
  Value.Table.add p.class_ids Value.Null 0;
  p.count <- 1;
  p.bytes <- bytes_of Value.Null;
  p

let ensure_chunk chunk =
  if chunk >= Array.length pool.values then begin
    let cap = ref (Array.length pool.values) in
    while chunk >= !cap do
      cap := !cap * 2
    done;
    let values = Array.make !cap [||] in
    Array.blit pool.values 0 values 0 (Array.length pool.values);
    let classes = Array.make !cap [||] in
    Array.blit pool.classes 0 classes 0 (Array.length pool.classes);
    let tags = Array.make !cap Bytes.empty in
    Array.blit pool.tags 0 tags 0 (Array.length pool.tags);
    let nums = Array.make !cap [||] in
    Array.blit pool.nums 0 nums 0 (Array.length pool.nums);
    (* Publish the new directories only after the blits: a concurrent
       reader sees either directory, both complete for every issued id. *)
    pool.values <- values;
    pool.classes <- classes;
    pool.tags <- tags;
    pool.nums <- nums
  end;
  if Array.length pool.values.(chunk) = 0 then begin
    pool.values.(chunk) <- Array.make chunk_size Value.Null;
    pool.classes.(chunk) <- Array.make chunk_size 0;
    pool.tags.(chunk) <- Bytes.make chunk_size '\000';
    pool.nums.(chunk) <- Array.make chunk_size 0.
  end

let intern_locked v =
  match Struct_tbl.find_opt pool.ids v with
  | Some id -> id
  | None ->
      let id = pool.count in
      let chunk = id lsr chunk_bits and off = id land chunk_mask in
      ensure_chunk chunk;
      pool.values.(chunk).(off) <- v;
      let cls =
        match Value.Table.find_opt pool.class_ids v with
        | Some c -> c
        | None ->
            Value.Table.add pool.class_ids v id;
            id
      in
      pool.classes.(chunk).(off) <- cls;
      if cls <> id then pool.aliased <- true;
      Bytes.set pool.tags.(chunk) off (Char.chr (Value.rank v));
      pool.nums.(chunk).(off) <-
        (match v with
        | Value.Int i -> float_of_int i
        | Value.Float f -> f
        | Value.Bool b -> if b then 1. else 0.
        | Value.Null | Value.String _ -> 0.);
      Struct_tbl.add pool.ids v id;
      pool.count <- id + 1;
      pool.bytes <- pool.bytes + bytes_of v;
      id

let intern v = Mutex.protect pool.lock (fun () -> intern_locked v)

let intern_tuple t =
  Mutex.protect pool.lock (fun () -> Array.map intern_locked t)

let intern_rows rows ~arity =
  Mutex.protect pool.lock (fun () ->
      let n = Array.length rows in
      Array.init arity (fun c ->
          Array.init n (fun i -> intern_locked rows.(i).(c))))

let resolve id = pool.values.(id lsr chunk_bits).(id land chunk_mask)
let class_of id = pool.classes.(id lsr chunk_bits).(id land chunk_mask)
let is_null id = id = 0
let size () = Mutex.protect pool.lock (fun () -> pool.count)
let count = size
let footprint_bytes () = Mutex.protect pool.lock (fun () -> pool.bytes)

(* Publish the pool gauges into the Obs registry.  The pool never evicts
   (ids are stable for the process lifetime), so in a long-lived server
   these readings only grow — scraping them is how a payload-churn leak is
   seen (docs/data-plane.md). *)
let observe () =
  if Obs.enabled () then
    Mutex.protect pool.lock (fun () ->
        Obs.Counter.set Obs.Names.value_pool_count pool.count;
        Obs.Counter.set Obs.Names.value_pool_bytes pool.bytes)

let classes_trivial () = not pool.aliased

let sort_key id =
  ( Bytes.get pool.tags.(id lsr chunk_bits) (id land chunk_mask),
    pool.nums.(id lsr chunk_bits).(id land chunk_mask) )

(* Total on interned ids in the Value.compare sense; 0 exactly for
   class-equal ids (compare's kernel is Value.equal is the class
   relation).  The flat tag/num keys decide almost every comparison with
   three array reads; ties (class-equal ids, floats colliding with large
   ints, same-rank strings) fall back to the exact boxed compare. *)
let compare_resolved a b =
  if a = b then 0
  else
    let ta = Bytes.get pool.tags.(a lsr chunk_bits) (a land chunk_mask)
    and tb = Bytes.get pool.tags.(b lsr chunk_bits) (b land chunk_mask) in
    if ta <> tb then Char.compare ta tb
    else if ta = '\003' then Value.compare (resolve a) (resolve b)
    else
      let c =
        Float.compare
          pool.nums.(a lsr chunk_bits).(a land chunk_mask)
          pool.nums.(b lsr chunk_bits).(b land chunk_mask)
      in
      if c <> 0 then c else Value.compare (resolve a) (resolve b)
