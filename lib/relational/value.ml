type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

let is_null = function Null -> true | Int _ | Float _ | String _ | Bool _ -> false

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | String _ | Bool _ -> None

let rank = function Null -> 0 | Bool _ -> 1 | Int _ -> 2 | Float _ -> 2 | String _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool a, Bool b -> Bool.compare a b
  | Int a, Int b -> Int.compare a b
  | Float a, Float b -> Float.compare a b
  | Int a, Float b -> Float.compare (float_of_int a) b
  | Float a, Int b -> Float.compare a (float_of_int b)
  | String a, String b -> String.compare a b
  | _ -> Int.compare (rank a) (rank b)

(* [equal] is the kernel of [compare]'s total order, by definition, so the
   two can never disagree about whether values coincide: [Int 1] equals
   [Float 1.0], and NaN equals NaN ([Float.compare nan nan = 0]).  Sort-based
   dedup and hash-based indexing therefore identify exactly the same pairs. *)
let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int a, Int b -> a = b
  | String a, String b -> String.equal a b
  | Bool a, Bool b -> a = b
  | _ -> compare a b = 0

let sql_eq a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | _ -> Some (compare a b = 0)

let sql_compare a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | _ -> Some (compare a b)

let add a b =
  match (a, b) with
  | Int a, Int b -> Int (a + b)
  | _ -> (
      match (to_float a, to_float b) with
      | Some a, Some b -> Float (a +. b)
      | _ -> Null)

let sub a b =
  match (a, b) with
  | Int a, Int b -> Int (a - b)
  | _ -> (
      match (to_float a, to_float b) with
      | Some a, Some b -> Float (a -. b)
      | _ -> Null)

let mul a b =
  match (a, b) with
  | Int a, Int b -> Int (a * b)
  | _ -> (
      match (to_float a, to_float b) with
      | Some a, Some b -> Float (a *. b)
      | _ -> Null)

let to_string = function
  | Null -> "null"
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
      else string_of_float f
  | String s -> s
  | Bool b -> string_of_bool b

let concat a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | _ -> String (to_string a ^ to_string b)

let to_sql = function
  | Null -> "NULL"
  | String s -> "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"
  (* SQL has no literal for nan or the infinities. *)
  | Float f when not (Float.is_finite f) -> "NULL"
  | (Int _ | Float _ | Bool _) as v -> to_string v

let of_csv_cell s =
  let s = String.trim s in
  if s = "" || String.lowercase_ascii s = "null" then Null
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> (
            match bool_of_string_opt (String.lowercase_ascii s) with
            | Some b -> Bool b
            | None -> String s))

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* Numerics hash through their float image so that any [Int]/[Float] pair
   [equal] identifies lands in one bucket; [compare] also collapses every
   NaN payload and the two signed zeros, so those normalize first. *)
let hash_numeric f =
  if Float.is_nan f then Hashtbl.hash (2, Float.nan)
  else if f = 0. then Hashtbl.hash (2, 0.)
  else Hashtbl.hash (2, f)

let hash = function
  | Null -> 17
  | Int i -> hash_numeric (float_of_int i)
  | Float f -> hash_numeric f
  | String s -> Hashtbl.hash (3, s)
  | Bool b -> Hashtbl.hash (4, b)

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Table = Hashtbl.Make (Hashed)

module Key_table = Hashtbl.Make (struct
  type nonrec t = t list

  let equal = List.equal equal
  let hash l = List.fold_left (fun acc v -> (acc * 31) + hash v) 7 l
end)
