(** Databases: a catalog of relations over mutually disjoint schemes, plus
    declared integrity constraints. *)

type t

val empty : t

(** Monotonic identity stamp.  Every constructing operation ([add],
    [replace], [add_constraint], [of_relations]) yields a database with a
    fresh, strictly larger version than any database built before it, so a
    version uniquely identifies one immutable catalog state — the key
    memo caches use to invalidate entries when the instance changes.
    [empty] is version 0. *)
val version : t -> int

val add : t -> Relation.t -> t
val add_constraint : t -> Integrity.t -> t

(** Replace an existing relation (matched by name) with a new instance.
    Raises [Invalid_argument] when no relation of that name exists. *)
val replace : t -> Relation.t -> t

val of_relations : ?constraints:Integrity.t list -> Relation.t list -> t
val find : t -> string -> Relation.t option

(** Raises [Not_found]. *)
val get : t -> string -> Relation.t

val mem : t -> string -> bool

(** In insertion order. *)
val relations : t -> Relation.t list
val relation_names : t -> string list
val constraints : t -> Integrity.t list
val foreign_keys : t -> Integrity.t list

(** All violations of all declared constraints. *)
val check : t -> Integrity.violation list

(** Total number of cells (tuples × arity) — the chase's scan cost. *)
val cell_count : t -> int

(** All occurrences of a value: [(relation, column, count)] triples.  The
    primitive behind the data chase (Section 5.2).  Nulls have no
    occurrences ([find_value db Null = []]). *)
val find_value : t -> Value.t -> (string * string * int) list

(** The per-relation unit of {!find_value} ([(rel, column, count)] rows for
    one relation), exposed so callers can fan the whole-database scan out
    across relations.  [find_value t v] is exactly
    [List.concat_map (fun r -> find_value_in r v) (relations t)]. *)
val find_value_in : Relation.t -> Value.t -> (string * string * int) list
