(** Databases: a catalog of relations over mutually disjoint schemes, plus
    declared integrity constraints. *)

type t

val empty : t

(** Monotonic identity stamp.  Every constructing operation ([add],
    [replace], [add_constraint], [of_relations]) yields a database with a
    fresh, strictly larger version than any database built before it, so a
    version uniquely identifies one immutable catalog state — the key
    memo caches use to invalidate entries when the instance changes.
    [empty] is version 0. *)
val version : t -> int

val add : t -> Relation.t -> t
val add_constraint : t -> Integrity.t -> t

(** Replace an existing relation (matched by name) with a new instance.
    Raises [Invalid_argument] when no relation of that name exists. *)
val replace : t -> Relation.t -> t

(** [insert_tuples t name tuples] adds a batch of tuples to relation
    [name], recording an insert-only {!Delta.kind} for the genuinely new
    tuples (duplicates of existing rows and within the batch are
    dropped).  Returns [t] unchanged — same version — when nothing is
    new.  Raises [Invalid_argument] on an unknown relation or malformed
    tuples.  This is the repair-friendly way to express an example-tuple
    edit; [replace] with a superset instance records the same delta. *)
val insert_tuples : t -> string -> Tuple.t list -> t

(** [deltas_from t v] is the chain of recorded changelog steps leading
    from version [v] to [t]'s version, oldest first — [Some []] when
    [v] is already [t]'s version, [None] when [v] is not a recorded
    ancestor (different lineage, or the bounded history window has
    dropped the steps).  The changelog keeps the most recent
    {!history_limit} steps. *)
val deltas_from : t -> int -> Delta.t list option

(** The raw changelog window, newest step first — what {!deltas_from}
    walks.  Exposed for the engine's promotion scan, which probes its
    cache at each recorded ancestor version. *)
val history : t -> Delta.t list

(** Size of this database's bounded changelog window, consulted each time
    a mutation records a step (an existing database's already-recorded
    window is not retrimmed).  Databases built without an explicit limit
    read the process default ({!set_history_limit}) at each recording.
    Larger windows let the engine's incremental promotion reach
    further-back ancestors at the cost of retaining more deltas per
    version.  When recording a step pushes the oldest one out of the
    window, the [delta.history_evicted] counter is bumped. *)
val history_limit : t -> int

(** Pin the changelog bound for this database (and everything derived from
    it) regardless of the process default.  Raises [Invalid_argument] when
    [n < 1]. *)
val with_history_limit : t -> int -> t

val default_history_limit : int

(** The process-wide default consulted by databases without a pinned
    limit. *)
val process_history_limit : unit -> int

(** Set the process-wide default window size.  Deprecated in favour of the
    per-database {!with_history_limit} / [of_relations ~history_limit]:
    this setter affects every database in the process that has not pinned
    its own limit — in a multi-session server, one session adjusting it
    would silently resize every other session's window.  Raises
    [Invalid_argument] when [n < 1]. *)
val set_history_limit : int -> unit

val of_relations :
  ?history_limit:int -> ?constraints:Integrity.t list -> Relation.t list -> t
val find : t -> string -> Relation.t option

(** Raises [Not_found]. *)
val get : t -> string -> Relation.t

val mem : t -> string -> bool

(** In insertion order. *)
val relations : t -> Relation.t list
val relation_names : t -> string list
val constraints : t -> Integrity.t list
val foreign_keys : t -> Integrity.t list

(** All violations of all declared constraints. *)
val check : t -> Integrity.violation list

(** Total number of cells (tuples × arity) — the chase's scan cost. *)
val cell_count : t -> int

(** All occurrences of a value: [(relation, column, count)] triples.  The
    primitive behind the data chase (Section 5.2).  Nulls have no
    occurrences ([find_value db Null = []]). *)
val find_value : t -> Value.t -> (string * string * int) list

(** The per-relation unit of {!find_value} ([(rel, column, count)] rows for
    one relation), exposed so callers can fan the whole-database scan out
    across relations.  [find_value t v] is exactly
    [List.concat_map (fun r -> find_value_in r v) (relations t)]. *)
val find_value_in : Relation.t -> Value.t -> (string * string * int) list
