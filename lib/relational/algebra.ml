let select p r =
  let keep = Predicate.compile (Relation.schema r) p in
  let out = Relation.filter keep r in
  Obs.add Obs.Names.select_rows_in (Relation.cardinality r);
  Obs.add Obs.Names.select_rows_out (Relation.cardinality out);
  out

(* Columnar kernels run whenever the switch is on and the shapes allow
   (non-zero arity; for joins, a non-empty cross-side equi-conjunction).
   Each kernel reproduces its boxed twin's row order and set semantics
   exactly — the qcheck parity suite renders both and compares bytes. *)
let columnar_on r = Columnar.enabled () && Schema.arity (Relation.schema r) > 0

let project attrs r =
  let schema = Relation.schema r in
  let positions = List.map (Schema.index schema) attrs in
  let out_schema = Schema.project schema attrs in
  Obs.add Obs.Names.project_rows (Relation.cardinality r);
  if columnar_on r && positions <> [] then
    let cols = Relation.columns r in
    Relation.of_columns ~allow_all_null:true (Relation.name r) out_schema
      (Array.of_list (List.map (fun i -> cols.(i)) positions))
  else
    Relation.create ~allow_all_null:true (Relation.name r) out_schema
      (List.map (fun t -> Tuple.project t positions) (Relation.tuples r))

let product l r =
  let schema = Schema.append (Relation.schema l) (Relation.schema r) in
  let out = ref [] in
  Relation.iter
    (fun tl -> Relation.iter (fun tr -> out := Tuple.concat tl tr :: !out) r)
    l;
  Obs.add Obs.Names.product_rows_out
    (Relation.cardinality l * Relation.cardinality r);
  Relation.create ~allow_all_null:true
    (Relation.name l ^ "x" ^ Relation.name r)
    schema (List.rev !out)

(* Split equality atoms into (left-position, right-position) pairs usable for
   a hash join, plus check that every atom spans the two sides. *)
let hashable_atoms l_schema r_schema p =
  match Predicate.as_equi_atoms p with
  | None -> None
  | Some atoms ->
      let split (a, b) =
        match (Schema.index_opt l_schema a, Schema.index_opt r_schema b) with
        | Some i, Some j -> Some (i, j)
        | _ -> (
            match (Schema.index_opt l_schema b, Schema.index_opt r_schema a) with
            | Some i, Some j -> Some (i, j)
            | _ -> None)
      in
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | atom :: rest -> (
            match split atom with Some ij -> go (ij :: acc) rest | None -> None)
      in
      go [] atoms

(* --- columnar equi-join core ------------------------------------------- *)

(* Hash join over class-id key columns.  Match pairs come out in exactly
   the boxed path's order: left rows ascending, and within one probe the
   matching right rows in [Hashtbl.find_all] chain order (latest
   insertion first), which both paths share.  Null keys (class 0) never
   match — strong predicate semantics. *)
let col_equi_join_flags pairs l r =
  let lc = Relation.columns l and rc = Relation.columns r in
  let ln = Relation.cardinality l and rn = Relation.cardinality r in
  let l_keys =
    Array.of_list (List.map (fun (i, _) -> Col_ops.class_column lc.(i)) pairs)
  in
  let r_keys =
    Array.of_list (List.map (fun (_, j) -> Col_ops.class_column rc.(j)) pairs)
  in
  let k = Array.length l_keys in
  let key_hash keys i =
    let h = ref 7 in
    for c = 0 to k - 1 do
      h := (!h * 31) + keys.(c).(i)
    done;
    !h land max_int
  in
  let key_nonnull keys i =
    let rec go c = c = k || (keys.(c).(i) <> 0 && go (c + 1)) in
    go 0
  in
  let keys_match li ri =
    let rec go c = c = k || (l_keys.(c).(li) = r_keys.(c).(ri) && go (c + 1)) in
    go 0
  in
  let l_matched = Array.make ln false and r_matched = Array.make rn false in
  let out_l = Col_ops.Ibuf.create 256 and out_r = Col_ops.Ibuf.create 256 in
  (if k = 1 then begin
     (* Single-column key (the fk = id shape dominating tree graphs):
        counting-sort buckets over the right key column replace the
        hashtable — exact class-id groups, no hashing, no chain
        filtering.  Groups are ascending, so scanning them backwards
        reproduces the chain order exactly. *)
     let lk = l_keys.(0) and rk = r_keys.(0) in
     let buckets = Col_ops.Buckets.make rk in
     let rows = Col_ops.Buckets.rows buckets in
     for li = 0 to ln - 1 do
       let v = lk.(li) in
       if v <> 0 then begin
         Obs.count Obs.Names.join_hash_probes;
         let start, len = Col_ops.Buckets.span buckets v in
         for b = start + len - 1 downto start do
           let ri = rows.(b) in
           l_matched.(li) <- true;
           r_matched.(ri) <- true;
           Col_ops.Ibuf.push out_l li;
           Col_ops.Ibuf.push out_r ri
         done
       end
     done
   end
   else begin
     let table = Hashtbl.create (max 16 rn) in
     for ri = 0 to rn - 1 do
       if key_nonnull r_keys ri then Hashtbl.add table (key_hash r_keys ri) ri
     done;
     for li = 0 to ln - 1 do
       if key_nonnull l_keys li then begin
         Obs.count Obs.Names.join_hash_probes;
         List.iter
           (fun ri ->
             if keys_match li ri then begin
               l_matched.(li) <- true;
               r_matched.(ri) <- true;
               Col_ops.Ibuf.push out_l li;
               Col_ops.Ibuf.push out_r ri
             end)
           (Hashtbl.find_all table (key_hash l_keys li))
       end
     done
   end);
  ( Col_ops.Ibuf.contents out_l,
    Col_ops.Ibuf.contents out_r,
    l_matched,
    r_matched )

let gather_col col rows = Array.map (fun i -> col.(i)) rows

(* Output columns for matched ++ left-dangling ++ right-dangling (either
   dangling side may be absent), null-filling the far side of danglers. *)
let col_join_output ~l ~r ~match_l ~match_r ~l_dangling ~r_dangling =
  let lc = Relation.columns l and rc = Relation.columns r in
  let nl = Array.length l_dangling and nr = Array.length r_dangling in
  let left_col c =
    Array.concat
      [ gather_col lc.(c) match_l; gather_col lc.(c) l_dangling; Array.make nr 0 ]
  in
  let right_col c =
    Array.concat
      [ gather_col rc.(c) match_r; Array.make nl 0; gather_col rc.(c) r_dangling ]
  in
  Array.append
    (Array.init (Array.length lc) left_col)
    (Array.init (Array.length rc) right_col)

let unmatched flags =
  let out = Col_ops.Ibuf.create 16 in
  Array.iteri (fun i m -> if not m then Col_ops.Ibuf.push out i) flags;
  Col_ops.Ibuf.contents out

(* The columnar join kernels apply when both sides have columns and the
   predicate is a non-empty cross-side equi-conjunction. *)
let col_join_applicable l r p =
  if
    Columnar.enabled ()
    && Schema.arity (Relation.schema l) > 0
    && Schema.arity (Relation.schema r) > 0
  then
    match hashable_atoms (Relation.schema l) (Relation.schema r) p with
    | Some ((_ :: _) as pairs) -> Some pairs
    | Some [] | None -> None
  else None

(* --- boxed path: inner join returning per-side match flags ------------- *)

let join_with_flags p l r =
  let l_schema = Relation.schema l and r_schema = Relation.schema r in
  let schema = Schema.append l_schema r_schema in
  let l_tuples = Relation.tuples_array l in
  let r_tuples = Relation.tuples_array r in
  let l_matched = Array.make (Array.length l_tuples) false in
  let r_matched = Array.make (Array.length r_tuples) false in
  let out = ref [] in
  let emit li ri tl tr =
    l_matched.(li) <- true;
    r_matched.(ri) <- true;
    out := Tuple.concat tl tr :: !out
  in
  (match hashable_atoms l_schema r_schema p with
  | Some ((_ :: _) as pairs) ->
      (* Hash join on the conjunction of equality atoms.  Null keys never
         match (strong predicate semantics). *)
      let key_of positions t =
        let vs = List.map (fun i -> t.(i)) positions in
        if List.exists Value.is_null vs then None else Some vs
      in
      let l_pos = List.map fst pairs and r_pos = List.map snd pairs in
      (* Keyed under Value.equal/Value.hash, so the hash path agrees with
         the predicate semantics on mixed numerics (Int 1 matches
         Float 1.0, as sql_eq says it must). *)
      let table = Value.Key_table.create (Array.length r_tuples) in
      Array.iteri
        (fun ri tr ->
          match key_of r_pos tr with
          | Some k -> Value.Key_table.add table k ri
          | None -> ())
        r_tuples;
      Array.iteri
        (fun li tl ->
          match key_of l_pos tl with
          | Some k ->
              Obs.count Obs.Names.join_hash_probes;
              List.iter
                (fun ri -> emit li ri tl r_tuples.(ri))
                (Value.Key_table.find_all table k)
          | None -> ())
        l_tuples
  | Some [] | None ->
      let keep = Predicate.compile schema p in
      Obs.add Obs.Names.join_loop_comparisons
        (Array.length l_tuples * Array.length r_tuples);
      Array.iteri
        (fun li tl ->
          Array.iteri
            (fun ri tr ->
              let t = Tuple.concat tl tr in
              if keep t then emit li ri tl tr)
            r_tuples)
        l_tuples);
  if Obs.enabled () then Obs.add Obs.Names.join_rows_out (List.length !out);
  (schema, List.rev !out, l_tuples, r_tuples, l_matched, r_matched)

let join p l r =
  match col_join_applicable l r p with
  | Some pairs ->
      let match_l, match_r, _, _ = col_equi_join_flags pairs l r in
      if Obs.enabled () then
        Obs.add Obs.Names.join_rows_out (Array.length match_l);
      let cols =
        col_join_output ~l ~r ~match_l ~match_r ~l_dangling:[||]
          ~r_dangling:[||]
      in
      (* Both inputs are sets, so distinct (li, ri) pairs concatenate to
         distinct rows: the boxed path's dedup is a no-op and is skipped. *)
      Relation.of_columns ~dedup:false ~allow_all_null:true
        (Relation.name l ^ "*" ^ Relation.name r)
        (Schema.append (Relation.schema l) (Relation.schema r))
        cols
  | None ->
      let schema, matched, _, _, _, _ = join_with_flags p l r in
      Relation.create ~allow_all_null:true
        (Relation.name l ^ "*" ^ Relation.name r)
        schema matched

let join_nested_loop p l r =
  let schema = Schema.append (Relation.schema l) (Relation.schema r) in
  let keep = Predicate.compile schema p in
  let out = ref [] in
  Relation.iter
    (fun tl ->
      Relation.iter
        (fun tr ->
          let t = Tuple.concat tl tr in
          if keep t then out := t :: !out)
        r)
    l;
  Obs.add Obs.Names.join_loop_comparisons
    (Relation.cardinality l * Relation.cardinality r);
  if Obs.enabled () then Obs.add Obs.Names.join_rows_out (List.length !out);
  Relation.create ~allow_all_null:true
    (Relation.name l ^ "*" ^ Relation.name r)
    schema (List.rev !out)

let join_sort_merge p l r =
  let l_schema = Relation.schema l and r_schema = Relation.schema r in
  let schema = Schema.append l_schema r_schema in
  match hashable_atoms l_schema r_schema p with
  | None | Some [] ->
      invalid_arg "Algebra.join_sort_merge: predicate is not a cross-side equi-join"
  | Some pairs ->
      let l_pos = List.map fst pairs and r_pos = List.map snd pairs in
      let key positions t = List.map (fun i -> t.(i)) positions in
      let cmp_key a b =
        let rec go = function
          | [], [] -> 0
          | x :: xs, y :: ys ->
              let c = Value.compare x y in
              if c <> 0 then c else go (xs, ys)
          | _ -> assert false
        in
        go (a, b)
      in
      let non_null k = not (List.exists Value.is_null k) in
      let sorted positions rel =
        Relation.tuples rel
        |> List.filter_map (fun t ->
               let k = key positions t in
               if non_null k then Some (k, t) else None)
        |> List.sort (fun (a, _) (b, _) -> cmp_key a b)
      in
      let ls = sorted l_pos l and rs = sorted r_pos r in
      (* Merge, pairing equal-key groups. *)
      let out = ref [] in
      let rec take_group k acc = function
        | (k', t) :: rest when cmp_key k k' = 0 -> take_group k (t :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let rec merge ls rs =
        match (ls, rs) with
        | [], _ | _, [] -> ()
        | (lk, lt) :: ltail, (rk, rt) :: rtail ->
            let c = cmp_key lk rk in
            if c < 0 then merge ltail rs
            else if c > 0 then merge ls rtail
            else begin
              let lgroup, lrest = take_group lk [ lt ] ltail in
              let rgroup, rrest = take_group rk [ rt ] rtail in
              List.iter
                (fun tl ->
                  List.iter (fun tr -> out := Tuple.concat tl tr :: !out) rgroup)
                lgroup;
              merge lrest rrest
            end
      in
      merge ls rs;
      if Obs.enabled () then Obs.add Obs.Names.join_rows_out (List.length !out);
      Relation.create ~allow_all_null:true
        (Relation.name l ^ "*" ^ Relation.name r)
        schema (List.rev !out)

let left_outer_join p l r =
  match col_join_applicable l r p with
  | Some pairs ->
      let match_l, match_r, l_matched, _ = col_equi_join_flags pairs l r in
      let l_dangling = unmatched l_matched in
      if Obs.enabled () then begin
        Obs.add Obs.Names.join_rows_out (Array.length match_l);
        Obs.add Obs.Names.outer_join_dangling (Array.length l_dangling)
      end;
      let cols =
        col_join_output ~l ~r ~match_l ~match_r ~l_dangling ~r_dangling:[||]
      in
      (* Matched rows carry a non-null key on the r side, dangling rows an
         all-null r side, so the blocks cannot collide: dup-free. *)
      Relation.of_columns ~dedup:false ~allow_all_null:true
        (Relation.name l ^ "=*" ^ Relation.name r)
        (Schema.append (Relation.schema l) (Relation.schema r))
        cols
  | None ->
      let schema, matched, l_tuples, _, l_matched, _ = join_with_flags p l r in
      let r_nulls = Tuple.nulls (Schema.arity (Relation.schema r)) in
      let dangling =
        Array.to_list l_tuples
        |> List.filteri (fun i _ -> not l_matched.(i))
        |> List.map (fun tl -> Tuple.concat tl r_nulls)
      in
      if Obs.enabled () then
        Obs.add Obs.Names.outer_join_dangling (List.length dangling);
      Relation.create ~allow_all_null:true
        (Relation.name l ^ "=*" ^ Relation.name r)
        schema (matched @ dangling)

let full_outer_join p l r =
  match col_join_applicable l r p with
  | Some pairs ->
      let match_l, match_r, l_matched, r_matched =
        col_equi_join_flags pairs l r
      in
      let l_dangling = unmatched l_matched
      and r_dangling = unmatched r_matched in
      if Obs.enabled () then begin
        Obs.add Obs.Names.join_rows_out (Array.length match_l);
        Obs.add Obs.Names.outer_join_dangling
          (Array.length l_dangling + Array.length r_dangling)
      end;
      let cols =
        col_join_output ~l ~r ~match_l ~match_r ~l_dangling ~r_dangling
      in
      (* Dedup stays on: when both inputs carry an all-null row its two
         dangling images coincide, and the boxed path collapses them. *)
      Relation.of_columns ~allow_all_null:true
        (Relation.name l ^ "=*=" ^ Relation.name r)
        (Schema.append (Relation.schema l) (Relation.schema r))
        cols
  | None ->
      let schema, matched, l_tuples, r_tuples, l_matched, r_matched =
        join_with_flags p l r
      in
      let l_nulls = Tuple.nulls (Schema.arity (Relation.schema l)) in
      let r_nulls = Tuple.nulls (Schema.arity (Relation.schema r)) in
      let l_dangling =
        Array.to_list l_tuples
        |> List.filteri (fun i _ -> not l_matched.(i))
        |> List.map (fun tl -> Tuple.concat tl r_nulls)
      in
      let r_dangling =
        Array.to_list r_tuples
        |> List.filteri (fun i _ -> not r_matched.(i))
        |> List.map (fun tr -> Tuple.concat l_nulls tr)
      in
      if Obs.enabled () then
        Obs.add Obs.Names.outer_join_dangling
          (List.length l_dangling + List.length r_dangling);
      Relation.create ~allow_all_null:true
        (Relation.name l ^ "=*=" ^ Relation.name r)
        schema
        (matched @ l_dangling @ r_dangling)

let require_same_schema op a b =
  if not (Schema.equal (Relation.schema a) (Relation.schema b)) then
    invalid_arg (op ^ ": schema mismatch")

let union a b =
  require_same_schema "Algebra.union" a b;
  if columnar_on a then
    Relation.of_columns ~allow_all_null:true (Relation.name a)
      (Relation.schema a)
      (Col_ops.concat [ Relation.columns a; Relation.columns b ])
  else
    Relation.create ~allow_all_null:true (Relation.name a) (Relation.schema a)
      (Relation.tuples a @ Relation.tuples b)

let difference a b =
  require_same_schema "Algebra.difference" a b;
  let b_set = Relation.Tuple_tbl.create (Relation.cardinality b) in
  Relation.iter (fun t -> Relation.Tuple_tbl.replace b_set t ()) b;
  Relation.filter (fun t -> not (Relation.Tuple_tbl.mem b_set t)) a

let pad r schema =
  let src = Relation.schema r in
  let mapping =
    Array.map (fun a -> Schema.index_opt src a) (Schema.attrs schema)
  in
  Array.iter
    (fun a ->
      if not (Schema.mem schema a) then
        invalid_arg ("Algebra.pad: target schema lacks " ^ Attr.to_string a))
    (Schema.attrs src);
  if Columnar.enabled () && Schema.arity schema > 0 then begin
    let cols = Relation.columns r in
    let n = Relation.cardinality r in
    (* Present columns are shared, missing ones null-filled; every source
       attribute survives, so padding is injective on rows: dedup would
       be a no-op and is skipped. *)
    Relation.of_columns ~dedup:false ~allow_all_null:true (Relation.name r)
      schema
      (Array.map
         (function Some i -> cols.(i) | None -> Array.make n 0)
         mapping)
  end
  else begin
    let widen t =
      Array.map (function Some i -> t.(i) | None -> Value.Null) mapping
    in
    Relation.create ~allow_all_null:true (Relation.name r) schema
      (List.map widen (Relation.tuples r))
  end

let outer_union a b =
  Obs.add Obs.Names.outer_union_rows
    (Relation.cardinality a + Relation.cardinality b);
  let sa = Relation.schema a and sb = Relation.schema b in
  let extra =
    Array.to_list (Schema.attrs sb)
    |> List.filter (fun at -> not (Schema.mem sa at))
  in
  let merged = Schema.of_attrs (Array.to_list (Schema.attrs sa) @ extra) in
  union (pad a merged) (Relation.with_name (Relation.name a) (pad b merged))
