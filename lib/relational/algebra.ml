let select p r =
  let keep = Predicate.compile (Relation.schema r) p in
  let out = Relation.filter keep r in
  Obs.add Obs.Names.select_rows_in (Relation.cardinality r);
  Obs.add Obs.Names.select_rows_out (Relation.cardinality out);
  out

let project attrs r =
  let schema = Relation.schema r in
  let positions = List.map (Schema.index schema) attrs in
  let out_schema = Schema.project schema attrs in
  Obs.add Obs.Names.project_rows (Relation.cardinality r);
  Relation.make_of_array ~allow_all_null:true (Relation.name r) out_schema
    (Array.map (fun t -> Tuple.project t positions) (Relation.tuples_array r))

let product l r =
  let schema = Schema.append (Relation.schema l) (Relation.schema r) in
  let out = ref [] in
  Relation.iter
    (fun tl -> Relation.iter (fun tr -> out := Tuple.concat tl tr :: !out) r)
    l;
  Obs.add Obs.Names.product_rows_out
    (Relation.cardinality l * Relation.cardinality r);
  Relation.make ~allow_all_null:true
    (Relation.name l ^ "x" ^ Relation.name r)
    schema (List.rev !out)

(* Split equality atoms into (left-position, right-position) pairs usable for
   a hash join, plus check that every atom spans the two sides. *)
let hashable_atoms l_schema r_schema p =
  match Predicate.as_equi_atoms p with
  | None -> None
  | Some atoms ->
      let split (a, b) =
        match (Schema.index_opt l_schema a, Schema.index_opt r_schema b) with
        | Some i, Some j -> Some (i, j)
        | _ -> (
            match (Schema.index_opt l_schema b, Schema.index_opt r_schema a) with
            | Some i, Some j -> Some (i, j)
            | _ -> None)
      in
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | atom :: rest -> (
            match split atom with Some ij -> go (ij :: acc) rest | None -> None)
      in
      go [] atoms

(* Inner join returning, additionally, per-side match flags for outer joins. *)
let join_with_flags p l r =
  let l_schema = Relation.schema l and r_schema = Relation.schema r in
  let schema = Schema.append l_schema r_schema in
  let l_tuples = Relation.tuples_array l in
  let r_tuples = Relation.tuples_array r in
  let l_matched = Array.make (Array.length l_tuples) false in
  let r_matched = Array.make (Array.length r_tuples) false in
  let out = ref [] in
  let emit li ri tl tr =
    l_matched.(li) <- true;
    r_matched.(ri) <- true;
    out := Tuple.concat tl tr :: !out
  in
  (match hashable_atoms l_schema r_schema p with
  | Some ((_ :: _) as pairs) ->
      (* Hash join on the conjunction of equality atoms.  Null keys never
         match (strong predicate semantics). *)
      let key_of positions t =
        let vs = List.map (fun i -> t.(i)) positions in
        if List.exists Value.is_null vs then None else Some vs
      in
      let l_pos = List.map fst pairs and r_pos = List.map snd pairs in
      (* Keyed under Value.equal/Value.hash, so the hash path agrees with
         the predicate semantics on mixed numerics (Int 1 matches
         Float 1.0, as sql_eq says it must). *)
      let table = Value.Key_table.create (Array.length r_tuples) in
      Array.iteri
        (fun ri tr ->
          match key_of r_pos tr with
          | Some k -> Value.Key_table.add table k ri
          | None -> ())
        r_tuples;
      Array.iteri
        (fun li tl ->
          match key_of l_pos tl with
          | Some k ->
              Obs.count Obs.Names.join_hash_probes;
              List.iter
                (fun ri -> emit li ri tl r_tuples.(ri))
                (Value.Key_table.find_all table k)
          | None -> ())
        l_tuples
  | Some [] | None ->
      let keep = Predicate.compile schema p in
      Obs.add Obs.Names.join_loop_comparisons
        (Array.length l_tuples * Array.length r_tuples);
      Array.iteri
        (fun li tl ->
          Array.iteri
            (fun ri tr ->
              let t = Tuple.concat tl tr in
              if keep t then emit li ri tl tr)
            r_tuples)
        l_tuples);
  if Obs.enabled () then Obs.add Obs.Names.join_rows_out (List.length !out);
  (schema, List.rev !out, l_tuples, r_tuples, l_matched, r_matched)

let join p l r =
  let schema, matched, _, _, _, _ = join_with_flags p l r in
  Relation.make ~allow_all_null:true
    (Relation.name l ^ "*" ^ Relation.name r)
    schema matched

let join_nested_loop p l r =
  let schema = Schema.append (Relation.schema l) (Relation.schema r) in
  let keep = Predicate.compile schema p in
  let out = ref [] in
  Relation.iter
    (fun tl ->
      Relation.iter
        (fun tr ->
          let t = Tuple.concat tl tr in
          if keep t then out := t :: !out)
        r)
    l;
  Obs.add Obs.Names.join_loop_comparisons
    (Relation.cardinality l * Relation.cardinality r);
  if Obs.enabled () then Obs.add Obs.Names.join_rows_out (List.length !out);
  Relation.make ~allow_all_null:true
    (Relation.name l ^ "*" ^ Relation.name r)
    schema (List.rev !out)

let join_sort_merge p l r =
  let l_schema = Relation.schema l and r_schema = Relation.schema r in
  let schema = Schema.append l_schema r_schema in
  match hashable_atoms l_schema r_schema p with
  | None | Some [] ->
      invalid_arg "Algebra.join_sort_merge: predicate is not a cross-side equi-join"
  | Some pairs ->
      let l_pos = List.map fst pairs and r_pos = List.map snd pairs in
      let key positions t = List.map (fun i -> t.(i)) positions in
      let cmp_key a b =
        let rec go = function
          | [], [] -> 0
          | x :: xs, y :: ys ->
              let c = Value.compare x y in
              if c <> 0 then c else go (xs, ys)
          | _ -> assert false
        in
        go (a, b)
      in
      let non_null k = not (List.exists Value.is_null k) in
      let sorted positions rel =
        Relation.tuples rel
        |> List.filter_map (fun t ->
               let k = key positions t in
               if non_null k then Some (k, t) else None)
        |> List.sort (fun (a, _) (b, _) -> cmp_key a b)
      in
      let ls = sorted l_pos l and rs = sorted r_pos r in
      (* Merge, pairing equal-key groups. *)
      let out = ref [] in
      let rec take_group k acc = function
        | (k', t) :: rest when cmp_key k k' = 0 -> take_group k (t :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let rec merge ls rs =
        match (ls, rs) with
        | [], _ | _, [] -> ()
        | (lk, lt) :: ltail, (rk, rt) :: rtail ->
            let c = cmp_key lk rk in
            if c < 0 then merge ltail rs
            else if c > 0 then merge ls rtail
            else begin
              let lgroup, lrest = take_group lk [ lt ] ltail in
              let rgroup, rrest = take_group rk [ rt ] rtail in
              List.iter
                (fun tl ->
                  List.iter (fun tr -> out := Tuple.concat tl tr :: !out) rgroup)
                lgroup;
              merge lrest rrest
            end
      in
      merge ls rs;
      if Obs.enabled () then Obs.add Obs.Names.join_rows_out (List.length !out);
      Relation.make ~allow_all_null:true
        (Relation.name l ^ "*" ^ Relation.name r)
        schema (List.rev !out)

let left_outer_join p l r =
  let schema, matched, l_tuples, _, l_matched, _ = join_with_flags p l r in
  let r_nulls = Tuple.nulls (Schema.arity (Relation.schema r)) in
  let dangling =
    Array.to_list l_tuples
    |> List.filteri (fun i _ -> not l_matched.(i))
    |> List.map (fun tl -> Tuple.concat tl r_nulls)
  in
  if Obs.enabled () then
    Obs.add Obs.Names.outer_join_dangling (List.length dangling);
  Relation.make ~allow_all_null:true
    (Relation.name l ^ "=*" ^ Relation.name r)
    schema (matched @ dangling)

let full_outer_join p l r =
  let schema, matched, l_tuples, r_tuples, l_matched, r_matched =
    join_with_flags p l r
  in
  let l_nulls = Tuple.nulls (Schema.arity (Relation.schema l)) in
  let r_nulls = Tuple.nulls (Schema.arity (Relation.schema r)) in
  let l_dangling =
    Array.to_list l_tuples
    |> List.filteri (fun i _ -> not l_matched.(i))
    |> List.map (fun tl -> Tuple.concat tl r_nulls)
  in
  let r_dangling =
    Array.to_list r_tuples
    |> List.filteri (fun i _ -> not r_matched.(i))
    |> List.map (fun tr -> Tuple.concat l_nulls tr)
  in
  if Obs.enabled () then
    Obs.add Obs.Names.outer_join_dangling
      (List.length l_dangling + List.length r_dangling);
  Relation.make ~allow_all_null:true
    (Relation.name l ^ "=*=" ^ Relation.name r)
    schema
    (matched @ l_dangling @ r_dangling)

let require_same_schema op a b =
  if not (Schema.equal (Relation.schema a) (Relation.schema b)) then
    invalid_arg (op ^ ": schema mismatch")

let union a b =
  require_same_schema "Algebra.union" a b;
  Relation.make ~allow_all_null:true (Relation.name a) (Relation.schema a)
    (Relation.tuples a @ Relation.tuples b)

let difference a b =
  require_same_schema "Algebra.difference" a b;
  let b_set = Relation.Tuple_tbl.create (Relation.cardinality b) in
  Relation.iter (fun t -> Relation.Tuple_tbl.replace b_set t ()) b;
  Relation.filter (fun t -> not (Relation.Tuple_tbl.mem b_set t)) a

let pad r schema =
  let src = Relation.schema r in
  let mapping =
    Array.map
      (fun a -> Schema.index_opt src a)
      (Schema.attrs schema)
  in
  Array.iter
    (fun a ->
      if not (Schema.mem schema a) then
        invalid_arg ("Algebra.pad: target schema lacks " ^ Attr.to_string a))
    (Schema.attrs src);
  let widen t =
    Array.map (function Some i -> t.(i) | None -> Value.Null) mapping
  in
  Relation.make_of_array ~allow_all_null:true (Relation.name r) schema
    (Array.map widen (Relation.tuples_array r))

let outer_union a b =
  Obs.add Obs.Names.outer_union_rows
    (Relation.cardinality a + Relation.cardinality b);
  let sa = Relation.schema a and sb = Relation.schema b in
  let extra =
    Array.to_list (Schema.attrs sb) |> List.filter (fun at -> not (Schema.mem sa at))
  in
  let merged = Schema.of_attrs (Array.to_list (Schema.attrs sa) @ extra) in
  union (pad a merged) (Relation.with_name (Relation.name a) (pad b merged))
