let parse_string text =
  let n = String.length text in
  let rows = ref [] and row = ref [] and buf = Buffer.create 32 in
  let flush_cell () =
    row := Buffer.contents buf :: !row;
    Buffer.clear buf
  in
  let flush_row () =
    flush_cell ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let rec plain i =
    if i >= n then ()
    else
      match text.[i] with
      | ',' ->
          flush_cell ();
          plain (i + 1)
      | '\r' when i + 1 < n && text.[i + 1] = '\n' ->
          flush_row ();
          plain (i + 2)
      | '\n' ->
          flush_row ();
          plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then ()
    else
      match text.[i] with
      | '"' when i + 1 < n && text.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  plain 0;
  if Buffer.length buf > 0 || !row <> [] then flush_row ();
  List.rev !rows |> List.filter (function [ "" ] -> false | _ -> true)

let relation_of_string ~name text =
  match parse_string text with
  | [] -> invalid_arg "Csv_io.relation_of_string: empty input"
  | header :: rows ->
      let schema = Schema.make name (List.map String.trim header) in
      let width = Schema.arity schema in
      let tuples =
        List.map
          (fun cells ->
            if List.length cells <> width then
              invalid_arg
                (Printf.sprintf "Csv_io: row width %d, header width %d"
                   (List.length cells) width);
            Tuple.make (List.map Value.of_csv_cell cells))
          rows
      in
      Relation.create name schema tuples

let relation_of_file ~name path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  relation_of_string ~name text

let database_of_dir dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter (fun f -> Filename.check_suffix f ".csv")
  |> List.map (fun f ->
         relation_of_file ~name:(Filename.remove_extension f) (Filename.concat dir f))
  |> Database.of_relations

let quote_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let relation_to_string r =
  let schema = Relation.schema r in
  let header =
    Array.to_list (Schema.attrs schema)
    |> List.map (fun a -> quote_cell a.Attr.name)
    |> String.concat ","
  in
  let rows =
    Relation.tuples r
    |> List.map (fun t ->
           Array.to_list t
           |> List.map (fun v ->
                  match v with Value.Null -> "" | _ -> quote_cell (Value.to_string v))
           |> String.concat ",")
  in
  String.concat "\n" (header :: rows) ^ "\n"
