(* Process-wide switch for the columnar operator kernels.

   When enabled (the default), the hot operators — equi hash joins,
   padding, projection, union, min-union subsumption — run over interned
   int columns; when disabled they take the boxed Tuple.t path the
   pre-columnar code used.  Output is byte-identical either way (the
   qcheck parity suite in test_columnar.ml asserts it); the switch exists
   as the `--no-columnar` ablation for bench/main B17 and as an escape
   hatch.  Storage is unaffected: relations always carry/lazily build both
   views. *)

let flag = Atomic.make true

let () =
  match Sys.getenv_opt "CLIO_NO_COLUMNAR" with
  | Some ("1" | "true" | "yes") -> Atomic.set flag false
  | Some _ | None -> ()

let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

let with_enabled b f =
  let prev = Atomic.get flag in
  Atomic.set flag b;
  Fun.protect ~finally:(fun () -> Atomic.set flag prev) f
