type kind =
  | Insert of { relation : string; tuples : Tuple.t list }
  | Rewrite of { relation : string }
  | New_relation of string
  | Constraints_only

type t = { from_version : int; to_version : int; kind : kind }

let touches_relation t name =
  match t.kind with
  | Insert { relation; _ } | Rewrite { relation } -> relation = name
  | New_relation relation -> relation = name
  | Constraints_only -> false

let pp_kind ppf = function
  | Insert { relation; tuples } ->
      Format.fprintf ppf "+%d tuple(s) into %s" (List.length tuples) relation
  | Rewrite { relation } -> Format.fprintf ppf "rewrite of %s" relation
  | New_relation relation -> Format.fprintf ppf "new relation %s" relation
  | Constraints_only -> Format.fprintf ppf "constraints only"

let pp ppf t =
  Format.fprintf ppf "v%d->v%d: %a" t.from_version t.to_version pp_kind t.kind
