(** Named finite sets of tuples over a scheme.

    Relations use set semantics: {!make} and all operators deduplicate.
    Tuples are stored in an array for cheap iteration; order is unspecified
    except where an operation documents sorting. *)

type t = private { name : string; schema : Schema.t; tuples : Tuple.t array }

(** Hash table keyed by whole tuples ({!Tuple.equal} / {!Tuple.hash});
    the building block for one-pass set operations over relations. *)
module Tuple_tbl : Hashtbl.S with type key = Tuple.t

(** Build a relation, checking every tuple's arity and removing duplicates.
    Raises [Invalid_argument] on arity mismatch or if a source tuple is
    all-null (disallowed by the paper's preliminaries). Pass
    [~allow_all_null:true] for intermediate results (e.g. padded
    associations) where all-null rows may legitimately appear. *)
val make : ?allow_all_null:bool -> string -> Schema.t -> Tuple.t list -> t

(** Array-native {!make}: same arity / all-null validation and
    deduplication, but takes ownership of the array — when the input is
    already duplicate-free (the common case on operator hot paths) the
    array is used as-is with no copy, so the caller must not mutate it
    afterwards. *)
val make_of_array : ?allow_all_null:bool -> string -> Schema.t -> Tuple.t array -> t

(** Like {!make} without the all-null check and from an array (no copy). *)
val of_array_unsafe : string -> Schema.t -> Tuple.t array -> t

val name : t -> string
val schema : t -> Schema.t
val tuples : t -> Tuple.t list

(** The underlying tuple array itself, no copy — read-only by contract. *)
val tuples_array : t -> Tuple.t array
val cardinality : t -> int
val is_empty : t -> bool
val mem : t -> Tuple.t -> bool
val iter : (Tuple.t -> unit) -> t -> unit
val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
val filter : (Tuple.t -> bool) -> t -> t
val with_name : string -> t -> t

(** Rename the owning node of every attribute; used to create relation
    copies such as [Parents2]. *)
val rename_rel : t -> from:string -> into:string -> t

(** Values appearing in a column, nulls excluded, deduplicated. *)
val column_values : t -> Attr.t -> Value.t list

(** Set equality (same schema, same tuple set). *)
val equal_contents : t -> t -> bool

val pp : Format.formatter -> t -> unit
