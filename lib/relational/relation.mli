(** Named finite sets of tuples over a scheme.

    Relations use set semantics: {!create} and all operators deduplicate
    (under [Value.equal], which identifies [Int 1] with [Float 1.0]).
    Order is unspecified except where an operation documents sorting.

    A relation holds up to two memoized representations of the same row
    sequence — the boxed [Tuple.t array] view and the columnar
    {!Value_pool}-id view — each materialized lazily from the other.
    Tuple-level accessors ({!tuples}, {!iter}, {!fold}, {!pp}, …) force
    the boxed view; the batch operator kernels ({!Algebra},
    [Fulldisj.Min_union]) work on {!columns}.  See docs/data-plane.md. *)

type t

(** Hash table keyed by whole tuples ({!Tuple.equal} / {!Tuple.hash});
    the building block for one-pass set operations over relations. *)
module Tuple_tbl : Hashtbl.S with type key = Tuple.t

(** The one tuple-level builder.  Checks every tuple's arity against the
    schema (always), rejects all-null tuples unless [~allow_all_null:true]
    (intermediate results such as padded associations may legitimately
    contain them), and removes duplicates unless [~dedup:false] (pass it
    only when the input is already a set — operator hot paths — or when
    the caller accepts first-occurrence semantics being skipped).
    Replaces the former [make] / [make_of_array] / [of_array_unsafe]
    trio: ownership of the list is irrelevant (it is reified), and the
    two optional flags are the whole validation contract. *)
val create :
  ?dedup:bool -> ?allow_all_null:bool -> string -> Schema.t -> Tuple.t list -> t

(** Columnar builder: one int array of {!Value_pool} structural ids per
    attribute, all of equal length.  Takes ownership of the arrays — do
    not mutate them afterwards.  Same validation contract as {!create}
    ([dedup] compares rows class-wise, first occurrence wins). *)
val of_columns :
  ?dedup:bool ->
  ?allow_all_null:bool ->
  string ->
  Schema.t ->
  int array array ->
  t

val name : t -> string
val schema : t -> Schema.t
val tuples : t -> Tuple.t list

(** The boxed tuple array, memoized, no copy — read-only by contract. *)
val tuples_array : t -> Tuple.t array

(** The columnar view, memoized, no copy — read-only by contract.  One
    int array per attribute; cells are {!Value_pool} structural ids
    (0 = null). *)
val columns : t -> int array array

val cardinality : t -> int
val is_empty : t -> bool
val mem : t -> Tuple.t -> bool
val iter : (Tuple.t -> unit) -> t -> unit
val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
val filter : (Tuple.t -> bool) -> t -> t
val with_name : string -> t -> t

(** Rename the owning node of every attribute; used to create relation
    copies such as [Parents2]. *)
val rename_rel : t -> from:string -> into:string -> t

(** Values appearing in a column, nulls excluded, deduplicated. *)
val column_values : t -> Attr.t -> Value.t list

(** Set equality (same schema, same tuple set). *)
val equal_contents : t -> t -> bool

(** Approximate resident bytes of the columnar representation (8 bytes a
    cell; the shared {!Value_pool} is not attributed).  Deterministic and
    O(1); the engine cache's byte budget is accounted in these units. *)
val footprint_bytes : t -> int

val pp : Format.formatter -> t -> unit
