open Relational
open Fulldisj
open Clio
module Qgraph = Querygraph.Qgraph

let db = Figure1.database
let kb = Figure1.kb

(* One caching context shared by all figures: the report re-evaluates the
   same running-example graphs many times, exactly the reuse the engine's
   memo cache targets. *)
let ctx = Eval_ctx.create ~kb db
let short = Figure1.short
let lookup = Database.find db
let buf_add = Buffer.add_string

let render_graph g = Qgraph.to_string g

let render_illustration (m : Mapping.t) exs =
  let fd = Mapping_eval.data_associations ctx m in
  Illustration.render ~short ~scheme:fd.Full_disjunction.scheme exs

let fig1 () =
  Database.relations db
  |> List.map (fun r -> Render.relation r)
  |> String.concat "\n\n"

let fig2 () =
  let m = Running.mapping in
  let b = Buffer.create 1024 in
  buf_add b "Value correspondences (v1..v5):\n";
  List.iteri
    (fun i c -> buf_add b (Printf.sprintf "  v%d: %s\n" (i + 1) (Correspondence.to_sql c)))
    m.Mapping.correspondences;
  buf_add b "\nSource sample (Children):\n";
  buf_add b (Render.relation (Database.get db "Children"));
  buf_add b "\n\nResult of the current mapping (Kids):\n";
  buf_add b (Render.relation (Mapping_eval.target_view ctx m));
  Buffer.contents b

let maya_tuples () =
  Relation.tuples (Database.get db "Children")
  |> List.filter (fun t -> Value.equal t.(0) (Value.String "002"))

let fig3 () =
  let start =
    Mapping.make
      ~graph:(Qgraph.singleton ~alias:"Children" ~base:"Children")
      ~target:Running.target ~target_cols:Running.kids_cols
      ~correspondences:
        [
          Correspondence.identity "ID" (Attr.make "Children" "ID");
          Correspondence.identity "name" (Attr.make "Children" "name");
        ]
      ()
  in
  let corr = Correspondence.identity "affiliation" (Attr.make "Parents" "affiliation") in
  match Op_correspondence.add ~kb ~max_len:1 start corr with
  | Op_correspondence.Alternatives alts ->
      let b = Buffer.create 1024 in
      List.iteri
        (fun i (a : Op_correspondence.alternative) ->
          let m = a.Op_correspondence.mapping in
          let fd = Mapping_eval.data_associations ctx m in
          let universe = Mapping_eval.examples ctx m in
          let maya =
            Focus.focus_set ~universe ~scheme:fd.Full_disjunction.scheme
              ~rel:"Children" ~tuples:(maya_tuples ())
          in
          buf_add b
            (Printf.sprintf "Scenario %d: %s\n%s\n\n%s\n\n" (i + 1)
               a.Op_correspondence.description
               (Illustration.render_source_tables ~lookup ~graph:m.Mapping.graph
                  ~scheme:fd.Full_disjunction.scheme maya)
               (render_illustration m maya)))
        alts;
      Buffer.contents b
  | _ -> "unexpected: affiliation correspondence did not yield alternatives"

let fig4 () =
  let alts =
    Op_walk.walk_alternatives ~kb Running.mapping_g1 ~start:"Children" ~goal:"PhoneDir"
      ~max_len:2 ()
  in
  let b = Buffer.create 2048 in
  List.iteri
    (fun i (a : Op_walk.alternative) ->
      let m = Mapping.set_correspondence a.Op_walk.mapping
          (Correspondence.identity "contactPh" (Attr.make a.Op_walk.new_alias "number"))
      in
      let fd = Mapping_eval.data_associations ctx m in
      let universe = Mapping_eval.examples ctx m in
      let maya =
        Focus.focus_set ~universe ~scheme:fd.Full_disjunction.scheme ~rel:"Children"
          ~tuples:(maya_tuples ())
      in
      buf_add b
        (Printf.sprintf "Scenario %d: walk %s\n%s\n\n%s\n\n" (i + 1)
           a.Op_walk.description
           (Illustration.render_source_tables ~lookup ~graph:m.Mapping.graph
              ~scheme:fd.Full_disjunction.scheme maya)
           (render_illustration m maya)))
    alts;
  Buffer.contents b

let fig5 () =
  let occs = Op_chase.occurrences_anywhere ctx (Value.String "002") in
  let b = Buffer.create 1024 in
  buf_add b "Occurrences of value 002 in the source database:\n";
  List.iter
    (fun (o : Op_chase.occurrence) ->
      buf_add b
        (Printf.sprintf "  %s.%s (%d tuple%s)\n" o.Op_chase.rel o.Op_chase.column
           o.Op_chase.count
           (if o.Op_chase.count = 1 then "" else "s")))
    occs;
  let alts =
    Op_chase.chase ctx Running.mapping_g1 ~attr:(Attr.make "Children" "ID")
      ~value:(Value.String "002")
  in
  buf_add b "\nChase scenarios (extensions of the current mapping):\n";
  List.iteri
    (fun i (a : Op_chase.alternative) ->
      buf_add b (Printf.sprintf "  Scenario %d: %s\n" (i + 1) a.Op_chase.description))
    alts;
  Buffer.contents b

let fig6 () =
  String.concat "\n"
    [
      "G : " ^ render_graph Running.graph_g;
      "G1: " ^ render_graph Running.graph_g1;
      "G2: " ^ render_graph Running.graph_g2;
      "";
      "DOT (G):";
      Querygraph.Dot.to_dot Running.graph_g;
    ]

let fig7 () =
  let f_g1 = Join_eval.full_associations (Source.of_fn lookup) Running.graph_g1 in
  let f_g2 = Join_eval.full_associations (Source.of_fn lookup) Running.graph_g2 in
  let s2 = Relation.schema f_g2 in
  let padded = Algebra.pad f_g1 s2 in
  let find rel =
    Relation.tuples rel
    |> List.find (fun t ->
           Value.equal (Tuple.value (Relation.schema rel) t (Attr.make "Children" "name"))
             (Value.String "Maya"))
  in
  let t = find f_g1 and u = find padded and v = find f_g2 in
  let row name tuple = (name, tuple) in
  String.concat "\n"
    [
      "t = full data association of G1 (Maya with her mother):";
      Render.annotated ~annot_header:"tuple" [ row "t" t ] (Relation.schema f_g1);
      "";
      "u = t padded with nulls to the scheme of G2 (possible association):";
      Render.annotated ~annot_header:"tuple" [ row "u" u ] s2;
      "";
      "v = full data association of G2 (strictly subsumes u):";
      Render.annotated ~annot_header:"tuple" [ row "v" v ] s2;
    ]

let render_fd fd =
  let rows =
    List.map
      (fun (a : Assoc.t) -> (Coverage.label ~short a.Assoc.coverage, a.Assoc.tuple))
      fd.Full_disjunction.associations
  in
  let rows = List.sort (fun (a, t1) (b, t2) ->
      match compare (String.length b) (String.length a) with
      | 0 -> (match compare a b with 0 -> Tuple.compare t1 t2 | c -> c)
      | c -> c)
      rows
  in
  Render.annotated ~annot_header:"coverage" rows fd.Full_disjunction.scheme

let fig8 () =
  let fd = Full_disjunction.compute (Source.of_fn lookup) Running.graph_g in
  "D(G) — the data associations of query graph G, tagged with coverage:\n"
  ^ render_fd fd

let fig9 () =
  let m = Running.mapping in
  let universe = Mapping_eval.examples ctx m in
  let sufficient =
    Sufficiency.select ~universe ~target_cols:m.Mapping.target_cols ()
  in
  let fd = Mapping_eval.data_associations ctx m in
  let focus =
    Focus.focus_set ~universe ~scheme:fd.Full_disjunction.scheme ~rel:"Children"
      ~tuples:(Relation.tuples (Database.get db "Children"))
  in
  let merged =
    List.fold_left
      (fun acc e -> if Illustration.mem e acc then acc else acc @ [ e ])
      sufficient focus
  in
  String.concat "\n"
    [
      "Sufficient illustration of the running mapping (Example 3.15),";
      "focused on the Children tuples 001, 002, 004, 009:";
      render_illustration m merged;
      "";
      "Induced target tuples:";
      Illustration.render_target ~short ~target_schema:(Mapping.target_schema m) merged;
    ]

let fig11 () =
  let alts =
    Op_walk.walk_alternatives ~kb Running.mapping_g1 ~start:"Children" ~goal:"PhoneDir"
      ~max_len:2 ()
  in
  let b = Buffer.create 1024 in
  buf_add b ("G1: " ^ render_graph Running.mapping_g1.Mapping.graph ^ "\n\n");
  buf_add b "walks(G1, Children, PhoneDir) produces:\n";
  List.iteri
    (fun i (a : Op_walk.alternative) ->
      buf_add b
        (Printf.sprintf "G%d: %s\n     path: %s\n" (i + 2)
           (render_graph a.Op_walk.mapping.Mapping.graph)
           a.Op_walk.description))
    alts;
  Buffer.contents b

let fig12 () =
  let alts =
    Op_chase.chase ctx Running.mapping_g1 ~attr:(Attr.make "Children" "ID")
      ~value:(Value.String "002")
  in
  let b = Buffer.create 1024 in
  buf_add b ("G1: " ^ render_graph Running.mapping_g1.Mapping.graph ^ "\n\n");
  buf_add b "chase(002 of Children.ID) produces:\n";
  List.iter
    (fun (a : Op_chase.alternative) ->
      buf_add b ("  " ^ render_graph a.Op_chase.mapping.Mapping.graph ^ "\n"))
    alts;
  Buffer.contents b

let sql () =
  let m = Running.section2_mapping in
  String.concat "\n"
    [
      "Canonical mapping query (Definition 3.14):";
      Mapping_sql.canonical m;
      "";
      "Left-outer-join form rooted at Children (the Section 2 SQL):";
      Mapping_sql.outer_join ~root:"Children" m;
      "";
      Printf.sprintf "Rooted form equivalent to Q_M on this database: %b"
        (Mapping_sql.rooted_equivalent ctx ~root:"Children" m);
      "";
      "WYSIWYG target view:";
      Render.relation (Mapping_eval.target_view ctx m);
    ]

let example_6_1 () =
  let eq r1 c1 r2 c2 = Predicate.eq_cols (Attr.make r1 c1) (Attr.make r2 c2) in
  let phone_mapping ~via ~filter =
    let graph =
      Qgraph.make
        [ ("Children", "Children"); ("Parents", "Parents"); ("PhoneDir", "PhoneDir") ]
        [
          ("Children", "Parents", eq "Children" via "Parents" "ID");
          ("Parents", "PhoneDir", eq "Parents" "ID" "PhoneDir" "ID");
        ]
    in
    Mapping.make ~graph ~target:"Kids" ~target_cols:[ "ID"; "name"; "contactPh" ]
      ~correspondences:
        [
          Correspondence.identity "ID" (Attr.make "Children" "ID");
          Correspondence.identity "name" (Attr.make "Children" "name");
          Correspondence.identity "contactPh" (Attr.make "PhoneDir" "number");
        ]
      ~source_filters:[ filter ]
      ~target_filters:[ Predicate.Is_not_null (Expr.col "Kids" "ID") ]
      ()
  in
  let mothers =
    phone_mapping ~via:"mid" ~filter:(Predicate.Is_not_null (Expr.col "Children" "mid"))
  in
  let fathers =
    phone_mapping ~via:"fid" ~filter:(Predicate.Is_null (Expr.col "Children" "mid"))
  in
  String.concat "\n"
    [
      "Mapping A (mother's phone, filter: mid not null):";
      Render.relation (Mapping_eval.target_view ctx mothers);
      "";
      "Mapping B (father's phone, filter: mid is null — the motherless kids):";
      Render.relation (Mapping_eval.target_view ctx fathers);
      "";
      "Assembled target (union of both accepted mappings):";
      Render.relation (Target.assemble ctx [ mothers; fathers ]);
    ]

let example_6_2 () =
  let eq r1 c1 r2 c2 = Predicate.eq_cols (Attr.make r1 c1) (Attr.make r2 c2) in
  let bus =
    Mapping.make
      ~graph:
        (Qgraph.make
           [ ("Children", "Children"); ("SBPS", "SBPS") ]
           [ ("Children", "SBPS", eq "Children" "ID" "SBPS" "ID") ])
      ~target:"Kids" ~target_cols:[ "ID"; "name"; "ArrivalTime" ]
      ~correspondences:
        [
          Correspondence.identity "ID" (Attr.make "Children" "ID");
          Correspondence.identity "name" (Attr.make "Children" "name");
          Correspondence.identity "ArrivalTime" (Attr.make "SBPS" "time");
        ]
      ()
  in
  let via_class =
    Correspondence.of_expr "ArrivalTime"
      (Expr.Concat
         (Expr.col "ClassSched" "lastClassEnd", Expr.Const (Value.String "+walk")))
  in
  match Op_correspondence.add ~kb ~max_len:1 bus via_class with
  | Op_correspondence.New_mapping (Op_correspondence.Alternatives (alt :: _)) ->
      String.concat "\n"
        [
          "Existing mapping (ArrivalTime from the bus schedule):";
          Render.relation (Mapping_eval.target_view ctx bus);
          "";
          "Adding a second correspondence for ArrivalTime (from ClassSched)";
          "spawns a new mapping by reuse; Clio links ClassSched via "
          ^ alt.Op_correspondence.description ^ ":";
          Render.relation (Mapping_eval.target_view ctx alt.Op_correspondence.mapping);
          "";
          "Assembled ArrivalTime target:";
          Render.relation
            (Target.assemble ctx [ bus; alt.Op_correspondence.mapping ]);
        ]
  | _ -> "unexpected outcome for the ArrivalTime correspondence"

let all =
  [
    ("fig1", "Figure 1: source database", fig1);
    ("fig2", "Figure 2: correspondences, source sample, target result", fig2);
    ("fig3", "Figure 3: affiliation scenarios (mid vs fid)", fig3);
    ("fig4", "Figure 4: data-walk phone scenarios", fig4);
    ("fig5", "Figure 5: chase of value 002", fig5);
    ("fig6", "Figure 6: query graphs G, G1, G2", fig6);
    ("fig7", "Figure 7: tuples t, u, v", fig7);
    ("fig8", "Figure 8: D(G) with coverage", fig8);
    ("fig9", "Figure 9: sufficient illustration with focus", fig9);
    ("fig11", "Figures 10/11: data-walk extensions", fig11);
    ("fig12", "Figure 12: data-chase extensions", fig12);
    ("sql", "Section 2: generated SQL and WYSIWYG target", sql);
    ("e6.1", "Example 6.1: complementary mappings", example_6_1);
    ("e6.2", "Example 6.2: mapping reuse for ArrivalTime", example_6_2);
  ]
