open Relational

let s v = Value.String v
let i v = Value.Int v
let nul = Value.Null

let rel name cols rows =
  Relation.create name (Schema.make name cols) (List.map Tuple.make rows)

let children =
  rel "Children"
    [ "ID"; "name"; "age"; "mid"; "fid"; "docid" ]
    [
      [ s "001"; s "Joe"; i 6; s "101"; s "102"; s "d17" ];
      [ s "002"; s "Maya"; i 5; s "103"; s "104"; s "d31" ];
      [ s "004"; s "Ann"; i 6; s "105"; s "106"; s "d17" ];
      [ s "009"; s "Bob"; i 8; nul; s "107"; s "d02" ];
    ]

let parents =
  rel "Parents"
    [ "ID"; "affiliation"; "salary"; "address" ]
    [
      [ s "101"; s "IBM"; i 60000; s "123 Elm St" ];
      [ s "102"; s "UCSF"; i 75000; s "123 Elm St" ];
      [ s "103"; s "Acta"; i 55000; s "9 Oak Ave" ];
      [ s "104"; s "IBM"; i 80000; s "9 Oak Ave" ];
      [ s "105"; s "UW"; i 50000; s "77 Pine Rd" ];
      [ s "106"; s "Sun"; i 65000; s "77 Pine Rd" ];
      [ s "107"; s "HP"; i 70000; s "5 Birch Ln" ];
      [ s "205"; s "MIT"; i 90000; s "1 Beacon St" ];
      [ s "206"; s "BBN"; i 40000; s "2 Cedar Ct" ];
    ]

let phone_dir =
  rel "PhoneDir"
    [ "ID"; "type"; "number" ]
    [
      [ s "101"; s "home"; s "555-0101" ];
      [ s "102"; s "cell"; s "555-0102" ];
      [ s "103"; s "home"; s "555-0103" ];
      [ s "104"; s "cell"; s "555-0104" ];
      [ s "105"; s "home"; s "555-0105" ];
      [ s "106"; s "cell"; s "555-0106" ];
      [ s "107"; s "home"; s "555-0107" ];
      [ s "205"; s "office"; s "555-0205" ];
      [ s "999"; s "fax"; s "555-0999" ];
    ]

let sbps =
  rel "SBPS"
    [ "ID"; "time"; "location" ]
    [
      [ s "001"; s "7:45am"; s "Elm & 1st" ];
      [ s "002"; s "8:05am"; s "Oak & Main" ];
      [ s "009"; s "8:20am"; s "Birch & 2nd" ];
      [ s "777"; s "7:30am"; s "Depot" ];
    ]

let xmas_bar =
  rel "XmasBar"
    [ "sellerID"; "buyerID"; "item" ]
    [
      [ s "002"; s "001"; s "cookies" ];
      [ s "004"; s "002"; s "candles" ];
    ]

(* Only children without a bus pickup have class-schedule rows (Example 6.2
   computes ArrivalTime from SBPS when the child takes a bus, else from
   ClassSched) — and keeping the bus kids out preserves the Figure 5 claim
   that 002 occurs only in SBPS (×1) and XmasBar (×2) outside Children. *)
let class_sched =
  rel "ClassSched"
    [ "ID"; "lastClassEnd" ]
    [ [ s "004"; s "1:45pm" ]; [ s "888"; s "2:00pm" ] ]

let database =
  Database.of_relations
    ~constraints:
      [
        Integrity.Primary_key ("Children", [ "ID" ]);
        Integrity.Primary_key ("Parents", [ "ID" ]);
        Integrity.Not_null ("Children", "ID");
        Integrity.Not_null ("Parents", "ID");
        Integrity.Foreign_key
          { rel = "Children"; cols = [ "mid" ]; ref_rel = "Parents"; ref_cols = [ "ID" ] };
        Integrity.Foreign_key
          { rel = "Children"; cols = [ "fid" ]; ref_rel = "Parents"; ref_cols = [ "ID" ] };
      ]
    [ children; parents; phone_dir; sbps; xmas_bar; class_sched ]

let kb =
  let asserted r1 c1 r2 c2 =
    { Schemakb.Kb.r1; r2; atoms = [ (c1, c2) ]; origin = Schemakb.Kb.Asserted }
  in
  let kb = Schemakb.Kb.of_database database in
  List.fold_left Schemakb.Kb.add kb
    [
      asserted "Parents" "ID" "PhoneDir" "ID";
      asserted "Children" "ID" "PhoneDir" "ID";
      asserted "Children" "ID" "SBPS" "ID";
      asserted "Children" "ID" "ClassSched" "ID";
    ]

let short = function
  | "Children" -> Some "C"
  | "Parents" -> Some "P"
  | "Parents2" -> Some "P2"
  | "PhoneDir" -> Some "Ph"
  | "PhoneDir2" -> Some "Ph2"
  | "SBPS" -> Some "S"
  | "XmasBar" -> Some "X"
  | "ClassSched" -> Some "CS"
  | _ -> None
