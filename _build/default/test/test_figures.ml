(* Golden checks on the figure regenerations (Paperdata.Report): every
   experiment renders without raising and contains the load-bearing
   content the paper describes.  This pins the figures against regressions
   without fixing incidental layout. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_all figure expectations =
  let text =
    match
      List.find_opt (fun (id, _, _) -> String.equal id figure) Paperdata.Report.all
    with
    | Some (_, _, render) -> render ()
    | None -> Alcotest.failf "unknown figure %s" figure
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (figure ^ " contains " ^ sub) true (contains text sub))
    expectations

let test_all_render () =
  List.iter
    (fun (id, _, render) ->
      let s = render () in
      Alcotest.(check bool) (id ^ " non-empty") true (String.length s > 0))
    Paperdata.Report.all

let test_fig1 () =
  check_all "fig1" [ "Children"; "Parents"; "PhoneDir"; "SBPS"; "XmasBar"; "Maya" ]

let test_fig2 () =
  check_all "fig2"
    [ "v1: Children.ID as ID"; "v5: SBPS.time as BusSchedule"; "Kids" ]

let test_fig3 () =
  (* Both scenarios, Maya highlighted, the two affiliations visible. *)
  check_all "fig3"
    [
      "Scenario 1";
      "Scenario 2";
      "Children.fid = Parents.ID";
      "Children.mid = Parents.ID";
      "| * | 002 | Maya";
      "Acta";
    ]

let test_fig4 () =
  check_all "fig4"
    [ "Scenario 1"; "Scenario 3"; "Parents2"; "555-0103"; "555-0104" ]

let test_fig5 () =
  check_all "fig5"
    [
      "SBPS.ID (1 tuple)";
      "XmasBar.sellerID (1 tuple)";
      "XmasBar.buyerID (1 tuple)";
      "Scenario 3";
    ]

let test_fig6 () = check_all "fig6" [ "Children.mid = Parents.ID"; "graph query_graph" ]

let test_fig7 () =
  check_all "fig7" [ "t = full data association"; "strictly subsumes"; "Maya" ]

let test_fig8 () =
  check_all "fig8" [ "CPPh"; "PPh"; "| C "; "| P "; "| Ph"; "555-0999" ]

let test_fig9 () =
  check_all "fig9"
    [ "CPPhS +"; "CPPhS -"; "CPPh +"; "PPh -"; "S -"; "Induced target tuples" ]

let test_fig11 () =
  check_all "fig11"
    [ "walks(G1, Children, PhoneDir)"; "G2:"; "G3:"; "G4:"; "Parents2" ]

let test_fig12 () = check_all "fig12" [ "chase(002"; "SBPS"; "XmasBar" ]

let test_sql () =
  check_all "sql"
    [
      "left join Parents on Children.fid = Parents.ID";
      "left join Parents Parents2 on Children.mid = Parents2.ID";
      "where Children.ID is not null";
      "Rooted form equivalent to Q_M on this database: true";
      "from D(G)";
    ]

let test_e61 () =
  check_all "e6.1" [ "555-0103"; "555-0107"; "Assembled target" ]

let test_e62 () = check_all "e6.2" [ "ClassSched"; "1:45pm+walk"; "Assembled" ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "figures"
    [
      ( "golden",
        [
          tc "all render" `Quick test_all_render;
          tc "fig1" `Quick test_fig1;
          tc "fig2" `Quick test_fig2;
          tc "fig3" `Quick test_fig3;
          tc "fig4" `Quick test_fig4;
          tc "fig5" `Quick test_fig5;
          tc "fig6" `Quick test_fig6;
          tc "fig7" `Quick test_fig7;
          tc "fig8" `Quick test_fig8;
          tc "fig9" `Quick test_fig9;
          tc "fig11" `Quick test_fig11;
          tc "fig12" `Quick test_fig12;
          tc "sql" `Quick test_sql;
          tc "e6.1" `Quick test_e61;
          tc "e6.2" `Quick test_e62;
        ] );
    ]
