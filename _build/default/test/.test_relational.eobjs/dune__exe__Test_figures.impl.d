test/test_figures.ml: Alcotest List Paperdata String
