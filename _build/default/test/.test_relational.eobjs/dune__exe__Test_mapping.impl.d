test/test_mapping.ml: Alcotest Array Attr Clio Correspondence Database Example Expr Fulldisj List Mapping Mapping_eval Mapping_sql Predicate Querygraph Relation Relational Schema String Tuple Value
