test/test_sampling.ml: Alcotest Attr Clio Correspondence Database Example Fulldisj List Mapping Mapping_eval Paperdata Querygraph Random Relation Relational Sampling Sufficiency Synth
