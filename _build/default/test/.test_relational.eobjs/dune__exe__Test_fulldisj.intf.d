test/test_fulldisj.mli:
