test/test_querygraph.mli:
