test/test_script.ml: Alcotest Clio Correspondence List Mapping Option Paperdata Relational Script String
