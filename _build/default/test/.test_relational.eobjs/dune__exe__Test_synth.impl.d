test/test_synth.ml: Alcotest Array Attr Database Fulldisj List Querygraph Random Relation Relational Schema Schemakb Synth Tuple Value
