test/test_workspace.mli:
