test/test_querygraph.ml: Alcotest Attr List Predicate Querygraph Relation Relational Schema String
