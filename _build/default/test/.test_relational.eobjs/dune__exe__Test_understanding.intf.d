test/test_understanding.mli:
