test/test_engine_extras.mli:
