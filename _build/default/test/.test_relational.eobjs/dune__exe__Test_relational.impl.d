test/test_relational.ml: Alcotest Algebra Array Attr Csv_io Database Expr Integrity List Option Predicate Printf Relation Relational Render Schema String Sys Tuple Value
