test/test_schemakb.ml: Alcotest Attr Database Integrity List Predicate Querygraph Relation Relational Schema Schemakb Tuple Value
