test/test_parse.ml: Alcotest Expr Paperdata Parse Predicate Relational Schema Tuple Value
