test/test_schemakb.mli:
