test/test_illustration.mli:
