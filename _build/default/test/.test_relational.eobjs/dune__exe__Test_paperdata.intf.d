test/test_paperdata.mli:
