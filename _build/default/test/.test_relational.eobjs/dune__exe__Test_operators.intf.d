test/test_operators.mli:
