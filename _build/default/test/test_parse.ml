(* Tests for the SQL-ish expression/predicate parser used by the CLI. *)

open Relational

let schema = Schema.make "R" [ "a"; "b"; "name" ]
let t vals = Tuple.make vals
let v_int i = Value.Int i
let value = Alcotest.testable Value.pp Value.equal

let eval_e ?rel s tuple = Expr.eval schema (Parse.expr ?rel s) tuple
let eval_p ?rel s tuple = Predicate.eval schema (Parse.predicate ?rel s) tuple

(* --- expressions --- *)

let test_literals () =
  Alcotest.(check value) "int" (v_int 42) (eval_e "42" (t [ v_int 0; v_int 0; Value.Null ]));
  Alcotest.(check value) "float" (Value.Float 2.5)
    (eval_e "2.5" (t [ v_int 0; v_int 0; Value.Null ]));
  Alcotest.(check value) "string" (Value.String "it's")
    (eval_e "'it''s'" (t [ v_int 0; v_int 0; Value.Null ]));
  Alcotest.(check value) "null" Value.Null
    (eval_e "null" (t [ v_int 0; v_int 0; Value.Null ]));
  Alcotest.(check value) "bool" (Value.Bool true)
    (eval_e "true" (t [ v_int 0; v_int 0; Value.Null ]))

let test_columns () =
  let tup = t [ v_int 7; v_int 3; Value.String "x" ] in
  Alcotest.(check value) "qualified" (v_int 7) (eval_e "R.a" tup);
  Alcotest.(check value) "default rel" (v_int 3) (eval_e ~rel:"R" "b" tup);
  Alcotest.check_raises "unqualified without default"
    (Parse.Parse_error "unqualified column b (no default relation)") (fun () ->
      ignore (Parse.expr "b"))

let test_arith_precedence () =
  let tup = t [ v_int 2; v_int 3; Value.Null ] in
  Alcotest.(check value) "mul binds tighter" (v_int 11) (eval_e "R.a + R.b * 3" tup);
  Alcotest.(check value) "parens" (v_int 15) (eval_e "(R.a + R.b) * 3" tup);
  Alcotest.(check value) "sub" (v_int (-1)) (eval_e "R.a - R.b" tup)

let test_concat_coalesce () =
  let tup = t [ Value.Null; v_int 3; Value.String "hi" ] in
  Alcotest.(check value) "concat" (Value.String "hi3") (eval_e "R.name || R.b" tup);
  Alcotest.(check value) "coalesce" (v_int 3) (eval_e "coalesce(R.a, R.b)" tup)

(* --- predicates --- *)

let test_comparisons () =
  let tup = t [ v_int 5; v_int 5; Value.String "Ann" ] in
  Alcotest.(check bool) "eq" true (eval_p "R.a = R.b" tup);
  Alcotest.(check bool) "neq sql" false (eval_p "R.a <> R.b" tup);
  Alcotest.(check bool) "neq c-style" false (eval_p "R.a != R.b" tup);
  Alcotest.(check bool) "lt" true (eval_p "R.a < 10" tup);
  Alcotest.(check bool) "ge" true (eval_p "R.a >= 5" tup);
  Alcotest.(check bool) "string cmp" true (eval_p "R.name = 'Ann'" tup)

let test_null_tests () =
  let tup = t [ Value.Null; v_int 1; Value.Null ] in
  Alcotest.(check bool) "is null" true (eval_p "R.a is null" tup);
  Alcotest.(check bool) "is not null" true (eval_p "R.b is not null" tup);
  Alcotest.(check bool) "null cmp is unknown" false (eval_p "R.a = 1" tup)

let test_boolean_structure () =
  let tup = t [ v_int 5; v_int 9; Value.Null ] in
  Alcotest.(check bool) "and" true (eval_p "R.a = 5 and R.b = 9" tup);
  Alcotest.(check bool) "or" true (eval_p "R.a = 0 or R.b = 9" tup);
  Alcotest.(check bool) "not" true (eval_p "not R.a = 0" tup);
  (* and binds tighter than or *)
  Alcotest.(check bool) "precedence" true (eval_p "R.a = 0 and R.b = 0 or R.b = 9" tup);
  Alcotest.(check bool) "grouping" false (eval_p "R.a = 0 and (R.b = 0 or R.b = 9)" tup)

let test_paren_expression_vs_predicate () =
  let tup = t [ v_int 2; v_int 3; Value.Null ] in
  (* A parenthesized expression starting a comparison must not be mistaken
     for predicate grouping. *)
  Alcotest.(check bool) "(a + b) = 5" true (eval_p "(R.a + R.b) = 5" tup)

let test_case_insensitive_keywords () =
  let tup = t [ Value.Null; v_int 1; Value.Null ] in
  Alcotest.(check bool) "IS NULL" true (eval_p "R.a IS NULL" tup);
  Alcotest.(check bool) "AND/OR" true (eval_p "R.b = 1 AND R.b = 1 OR R.b = 2" tup)

let test_age_filter_equivalence () =
  (* The paper's filter, parsed, behaves like the hand-built one. *)
  let parsed = Parse.predicate "Children.age < 7" in
  Alcotest.(check bool) "same predicate" true
    (Predicate.equal parsed Paperdata.Running.age_filter)

let test_errors () =
  let bad s = Alcotest.(check bool) s true (Parse.predicate_opt s = None) in
  bad "R.a <";
  bad "R.a = 1 and";
  bad "R.a is 7";
  bad "(R.a = 1";
  bad "R.a = 1 extra";
  Alcotest.(check bool) "expr_opt bad" true (Parse.expr_opt "1 +" = None);
  Alcotest.(check bool) "unterminated string" true (Parse.expr_opt "'abc" = None)

let test_roundtrip_through_sql () =
  (* parse → to_sql → parse is stable for a representative predicate. *)
  let p = Parse.predicate "R.a >= 2 and (R.b < 4 or R.name is not null)" in
  let p2 = Parse.predicate (Predicate.to_sql p) in
  Alcotest.(check bool) "stable" true (Predicate.equal p p2)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "parse"
    [
      ( "expr",
        [
          tc "literals" `Quick test_literals;
          tc "columns" `Quick test_columns;
          tc "precedence" `Quick test_arith_precedence;
          tc "concat/coalesce" `Quick test_concat_coalesce;
        ] );
      ( "predicate",
        [
          tc "comparisons" `Quick test_comparisons;
          tc "null tests" `Quick test_null_tests;
          tc "boolean structure" `Quick test_boolean_structure;
          tc "paren disambiguation" `Quick test_paren_expression_vs_predicate;
          tc "case insensitive" `Quick test_case_insensitive_keywords;
          tc "paper filter" `Quick test_age_filter_equivalence;
          tc "errors" `Quick test_errors;
          tc "sql roundtrip" `Quick test_roundtrip_through_sql;
        ] );
    ]
