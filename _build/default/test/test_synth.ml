(* Tests for the synthetic workload generators: determinism, shape, and
   constraint plausibility. *)

open Relational
module Qgraph = Querygraph.Qgraph

let test_relation_deterministic () =
  let gen seed =
    Synth.Gen_db.relation (Random.State.make [| seed |]) ~name:"R" ~rows:50
      ~payload_cols:2
      ~fks:[ { Synth.Gen_db.target = "S"; null_prob = 0.2; orphan_prob = 0.1 } ]
      ~key_space:100
  in
  Alcotest.(check bool) "same seed same data" true
    (Relation.equal_contents (gen 7) (gen 7));
  Alcotest.(check bool) "different seed differs" false
    (Relation.equal_contents (gen 7) (gen 8))

let test_relation_ids_unique () =
  let r =
    Synth.Gen_db.relation (Random.State.make [| 1 |]) ~name:"R" ~rows:80
      ~payload_cols:0 ~fks:[] ~key_space:100
  in
  let ids = Relation.column_values r (Attr.make "R" "id") in
  Alcotest.(check int) "unique ids" 80 (List.length ids)

let test_relation_null_rate () =
  let r =
    Synth.Gen_db.relation (Random.State.make [| 2 |]) ~name:"R" ~rows:1000
      ~payload_cols:0
      ~fks:[ { Synth.Gen_db.target = "S"; null_prob = 0.5; orphan_prob = 0.0 } ]
      ~key_space:2000
  in
  let s = Relation.schema r in
  let i = Schema.index s (Attr.make "R" "fk_S") in
  let nulls = Relation.fold (fun acc t -> if Value.is_null t.(i) then acc + 1 else acc) 0 r in
  Alcotest.(check bool) "roughly half null" true (nulls > 350 && nulls < 650)

let test_chain_shape () =
  let inst = Synth.Gen_graph.chain (Random.State.make [| 3 |]) ~n:4 ~rows:20 () in
  Alcotest.(check int) "4 relations" 4
    (List.length (Database.relations inst.Synth.Gen_graph.db));
  Alcotest.(check int) "4 nodes" 4 (Qgraph.node_count inst.Synth.Gen_graph.graph);
  Alcotest.(check int) "3 edges" 3 (Qgraph.edge_count inst.Synth.Gen_graph.graph);
  Alcotest.(check bool) "connected" true (Qgraph.is_connected inst.Synth.Gen_graph.graph);
  Alcotest.(check int) "kb pairs" 3 (List.length (Schemakb.Kb.pairs inst.Synth.Gen_graph.kb))

let test_star_shape () =
  let inst = Synth.Gen_graph.star (Random.State.make [| 4 |]) ~leaves:5 ~rows:10 () in
  let g = inst.Synth.Gen_graph.graph in
  Alcotest.(check int) "6 nodes" 6 (Qgraph.node_count g);
  Alcotest.(check int) "5 edges" 5 (Qgraph.edge_count g);
  Alcotest.(check int) "hub degree" 5 (List.length (Qgraph.neighbours g "Fact"))

let test_random_tree_is_tree () =
  for seed = 0 to 20 do
    let inst =
      Synth.Gen_graph.random_tree (Random.State.make [| seed |]) ~n:6 ~rows:5 ()
    in
    let g = inst.Synth.Gen_graph.graph in
    Alcotest.(check bool) "tree" true (Fulldisj.Outerjoin_plan.is_tree g)
  done

let test_no_orphans_means_fk_valid () =
  let inst =
    Synth.Gen_graph.chain (Random.State.make [| 5 |]) ~n:3 ~rows:30 ~null_prob:0.2
      ~orphan_prob:0.0 ()
  in
  Alcotest.(check int) "no violations" 0
    (List.length (Database.check inst.Synth.Gen_graph.db))

let test_orphans_cause_violations () =
  let inst =
    Synth.Gen_graph.chain (Random.State.make [| 6 |]) ~n:2 ~rows:200 ~null_prob:0.0
      ~orphan_prob:0.5 ()
  in
  Alcotest.(check bool) "violations found" true
    (List.length (Database.check inst.Synth.Gen_graph.db) > 0)

let test_sparse_tuples () =
  let ts =
    Synth.Gen_db.sparse_tuples (Random.State.make [| 7 |]) ~rows:100 ~arity:3
      ~null_prob:1.0 ~domain:5
  in
  Alcotest.(check int) "rows" 100 (List.length ts);
  Alcotest.(check bool) "all null at p=1" true (List.for_all Tuple.all_null ts)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "synth"
    [
      ( "gen_db",
        [
          tc "deterministic" `Quick test_relation_deterministic;
          tc "unique ids" `Quick test_relation_ids_unique;
          tc "null rate" `Quick test_relation_null_rate;
          tc "sparse tuples" `Quick test_sparse_tuples;
        ] );
      ( "gen_graph",
        [
          tc "chain" `Quick test_chain_shape;
          tc "star" `Quick test_star_shape;
          tc "random tree" `Quick test_random_tree_is_tree;
          tc "fk valid without orphans" `Quick test_no_orphans_means_fk_valid;
          tc "orphans violate" `Quick test_orphans_cause_violations;
        ] );
    ]
