(** Data associations: tuples over a query graph's combined scheme, tagged
    with their coverage (Definitions 3.5–3.6). *)

open Relational

type t = { tuple : Tuple.t; coverage : Coverage.t }

val make : Tuple.t -> Coverage.t -> t
val equal : t -> t -> bool

(** [coverage_of_tuple scheme node_positions tuple] — infer coverage from
    the null pattern: a node participates iff at least one of its columns is
    non-null.  Sound because source relations contain no all-null tuples.
    [node_positions] maps each alias to its column positions in [scheme]. *)
val coverage_of_tuple : (string * int list) list -> Tuple.t -> Coverage.t

(** Positions (in the full scheme) covered by the association's coverage. *)
val covered_positions : (string * int list) list -> t -> int list

(** [project_alias full_scheme assoc alias] — the source tuple contributed
    by one node (all of that node's columns). *)
val project_alias : Schema.t -> t -> string -> Tuple.t

val pp : Schema.t -> Format.formatter -> t -> unit
