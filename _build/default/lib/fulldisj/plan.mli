(** Explainable evaluation plans for D(G).

    Clio evaluates full disjunctions behind the scenes; this module exposes
    the decision: which algorithm would run for a graph, what the category
    space looks like, and cardinality estimates from the instance — an
    EXPLAIN facility for the mapping engine (and the machinery bench B2
    ablations reason about). *)

open Relational
module Qgraph = Querygraph.Qgraph

type algorithm_choice =
  | Outerjoin_cascade  (** tree graph: full-outer-join cascade + sweep *)
  | Indexed_categories  (** general graph: per-category joins + indexed min-union *)

type t = {
  algorithm : algorithm_choice;
  nodes : int;
  edges : int;
  categories : int;  (** number of induced connected subgraphs *)
  join_order : string list;  (** BFS order used by the cascade / F(G) joins *)
  estimated_base_rows : (string * int) list;  (** alias → instance cardinality *)
}

(** Inspect without evaluating. *)
val analyze : lookup:(string -> Relation.t option) -> Qgraph.t -> t

(** Choose and run the algorithm of {!analyze}. *)
val execute : lookup:(string -> Relation.t option) -> Qgraph.t -> Full_disjunction.result

(** EXPLAIN-style rendering. *)
val render : t -> string
