lib/fulldisj/full_disjunction.mli: Assoc Coverage Database Querygraph Relation Relational Schema
