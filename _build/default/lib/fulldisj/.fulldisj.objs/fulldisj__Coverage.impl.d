lib/fulldisj/coverage.ml: Format List Set String
