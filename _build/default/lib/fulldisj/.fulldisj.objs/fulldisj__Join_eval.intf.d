lib/fulldisj/join_eval.mli: Querygraph Relation Relational Schema
