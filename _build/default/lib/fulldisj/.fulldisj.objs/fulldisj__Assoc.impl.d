lib/fulldisj/assoc.ml: Array Coverage Format List Relational Schema Tuple Value
