lib/fulldisj/outerjoin_plan.mli: Full_disjunction Querygraph Relation Relational
