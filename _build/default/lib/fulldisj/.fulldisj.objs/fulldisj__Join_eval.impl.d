lib/fulldisj/join_eval.ml: Algebra Array List Option Predicate Querygraph Relation Relational Schema Tuple
