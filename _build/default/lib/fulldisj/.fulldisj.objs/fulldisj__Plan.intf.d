lib/fulldisj/plan.mli: Full_disjunction Querygraph Relation Relational
