lib/fulldisj/assoc.mli: Coverage Format Relational Schema Tuple
