lib/fulldisj/coverage.mli: Format
