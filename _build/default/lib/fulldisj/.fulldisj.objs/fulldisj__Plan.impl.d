lib/fulldisj/plan.ml: Full_disjunction List Outerjoin_plan Printf Querygraph Relation Relational String
