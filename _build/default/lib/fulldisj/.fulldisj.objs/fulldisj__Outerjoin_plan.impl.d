lib/fulldisj/outerjoin_plan.ml: Algebra Assoc Full_disjunction Join_eval List Min_union Option Predicate Querygraph Relation Relational Schema
