lib/fulldisj/min_union.ml: Algebra Array Hashtbl List Option Relation Relational Tuple Value
