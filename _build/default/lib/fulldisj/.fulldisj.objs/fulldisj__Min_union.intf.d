lib/fulldisj/min_union.mli: Relation Relational Tuple
