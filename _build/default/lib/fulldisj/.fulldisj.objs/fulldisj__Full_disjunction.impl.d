lib/fulldisj/full_disjunction.ml: Algebra Array Assoc Coverage Database Hashtbl Join_eval List Min_union Querygraph Relation Relational Schema Tuple Value
