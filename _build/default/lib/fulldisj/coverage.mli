(** Coverage of a data association (Definition 3.6): the set of query-graph
    nodes whose tuples participate in the association. *)

type t

val of_list : string list -> t
val to_list : t -> string list
val singleton : string -> t
val mem : string -> t -> bool
val subset : t -> t -> bool
val strict_superset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val cardinal : t -> int

(** Human-readable tag.  [short] maps an alias to its abbreviation (the
    paper tags rows "CPPhS"); defaults to the alias' first letter sequence
    fallback of the full name. Unmapped aliases print in full. *)
val label : ?short:(string -> string option) -> t -> string

val pp : Format.formatter -> t -> unit
