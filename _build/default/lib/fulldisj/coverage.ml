module Sset = Set.Make (String)

type t = Sset.t

let of_list = Sset.of_list
let to_list = Sset.elements
let singleton = Sset.singleton
let mem = Sset.mem
let subset = Sset.subset
let strict_superset a b = Sset.subset b a && not (Sset.equal a b)
let equal = Sset.equal
let compare = Sset.compare
let cardinal = Sset.cardinal

let label ?(short = fun _ -> None) t =
  let names = Sset.elements t in
  let abbreviated = List.map (fun n -> match short n with Some s -> s | None -> n) names in
  if List.for_all (fun (n, s) -> not (String.equal n s)) (List.combine names abbreviated)
  then String.concat "" abbreviated
  else String.concat "," abbreviated

let pp ppf t = Format.pp_print_string ppf (label t)
