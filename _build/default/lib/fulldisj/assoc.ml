open Relational

type t = { tuple : Tuple.t; coverage : Coverage.t }

let make tuple coverage = { tuple; coverage }

let equal a b = Tuple.equal a.tuple b.tuple && Coverage.equal a.coverage b.coverage

let coverage_of_tuple node_positions tuple =
  List.filter_map
    (fun (alias, positions) ->
      if List.exists (fun i -> not (Value.is_null tuple.(i))) positions then Some alias
      else None)
    node_positions
  |> Coverage.of_list

let covered_positions node_positions t =
  List.concat_map
    (fun (alias, positions) ->
      if Coverage.mem alias t.coverage then positions else [])
    node_positions

let project_alias scheme t alias =
  Tuple.project t.tuple (Schema.positions_of_rel scheme alias)

let pp scheme ppf t =
  Format.fprintf ppf "[%a] %a" Coverage.pp t.coverage Tuple.pp t.tuple;
  ignore scheme
