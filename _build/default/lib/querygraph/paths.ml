(* neighbours yields (next_node, label) pairs; explore in node order. *)
let sort_steps steps =
  List.sort (fun (a, _) (b, _) -> String.compare a b) steps

let enumerate ~neighbours ~max_len ~keep start =
  let out = ref [] in
  let rec go node visited path_rev depth =
    if keep node (depth > 0) then out := List.rev path_rev :: !out;
    if depth < max_len then
      List.iter
        (fun (next, label) ->
          if not (List.mem next visited) then
            go next (next :: visited) ((label, next) :: path_rev) (depth + 1))
        (sort_steps (neighbours node))
  in
  go start [ start ] [] 0;
  List.rev !out

let simple_paths ~neighbours ~max_len start goal =
  enumerate ~neighbours ~max_len ~keep:(fun node _ -> String.equal node goal) start

let paths_from ~neighbours ~max_len start =
  enumerate ~neighbours ~max_len ~keep:(fun _ nonempty -> nonempty) start
