(** Graphviz DOT export of query graphs — the text stand-in for Clio's
    schema-viewer visualization of the query graph (Section 6.1). *)

(** [to_dot ?highlight g] — DOT source; aliases in [highlight] are drawn
    filled (used to show the active mapping's graph on top of the schema
    graph). *)
val to_dot : ?highlight:string list -> Qgraph.t -> string
