open Relational

let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let to_dot ?(highlight = []) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph query_graph {\n  node [shape=box];\n";
  List.iter
    (fun n ->
      let label =
        if String.equal n.Qgraph.alias n.Qgraph.base then n.Qgraph.alias
        else Printf.sprintf "%s (copy of %s)" n.Qgraph.alias n.Qgraph.base
      in
      let style =
        if List.mem n.Qgraph.alias highlight then
          ", style=filled, fillcolor=lightgrey"
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [label=\"%s\"%s];\n" (escape n.Qgraph.alias)
           (escape label) style))
    (Qgraph.nodes g);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -- \"%s\" [label=\"%s\"];\n" (escape e.Qgraph.n1)
           (escape e.Qgraph.n2)
           (escape (Predicate.to_sql e.Qgraph.pred))))
    (Qgraph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
