(** Simple-path enumeration over an abstract labeled adjacency relation.

    Used by the data-walk machinery (Section 5.1): Clio's knowledge of
    joinable relation pairs forms a graph, and [walks(G, Q, R)] enumerates
    the simple paths from Q to R within it.  The adjacency function may
    return several labels for the same pair (several candidate join
    conditions), each yielding a distinct path. *)

(** [simple_paths ~neighbours ~max_len start goal] — every simple path
    [start = n0, l1, n1, ..., lk, nk = goal] with [k <= max_len] edges.
    Each path is the list of steps [(label, node)] after [start].
    Paths are returned in lexicographic node order; [start = goal] yields
    the empty path. *)
val simple_paths :
  neighbours:(string -> (string * 'label) list) ->
  max_len:int ->
  string ->
  string ->
  ('label * string) list list

(** All simple paths from [start] of length 1..max_len, regardless of
    endpoint (used for exploratory walks with no fixed target). *)
val paths_from :
  neighbours:(string -> (string * 'label) list) ->
  max_len:int ->
  string ->
  ('label * string) list list
