lib/querygraph/paths.ml: List String
