lib/querygraph/dot.ml: Buffer List Predicate Printf Qgraph Relational String
