lib/querygraph/qgraph.ml: Format Hashtbl List Map Option Predicate Printf Relation Relational Schema String
