lib/querygraph/qgraph.mli: Format Predicate Relation Relational Schema
