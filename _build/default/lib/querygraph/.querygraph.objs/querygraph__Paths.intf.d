lib/querygraph/paths.mli:
