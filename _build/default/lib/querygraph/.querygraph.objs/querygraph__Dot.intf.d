lib/querygraph/dot.mli: Qgraph
