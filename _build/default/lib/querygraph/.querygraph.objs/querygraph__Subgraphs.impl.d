lib/querygraph/subgraphs.ml: List Qgraph Set String
