lib/querygraph/subgraphs.mli: Qgraph
