open Relational

type node = { alias : string; base : string }
type edge = { n1 : string; n2 : string; pred : Predicate.t }

module Smap = Map.Make (String)

(* Edges keyed by the sorted alias pair, so (a,b) = (b,a). *)
module Pmap = Map.Make (struct
  type t = string * string

  let compare = compare
end)

type t = { node_map : node Smap.t; edge_map : Predicate.t Pmap.t }

let empty = { node_map = Smap.empty; edge_map = Pmap.empty }

let add_node g ~alias ~base =
  if Smap.mem alias g.node_map then
    invalid_arg ("Qgraph.add_node: duplicate alias " ^ alias);
  { g with node_map = Smap.add alias { alias; base } g.node_map }

let key a b = if String.compare a b <= 0 then (a, b) else (b, a)

let add_edge g a b pred =
  if not (Smap.mem a g.node_map) then invalid_arg ("Qgraph.add_edge: unknown node " ^ a);
  if not (Smap.mem b g.node_map) then invalid_arg ("Qgraph.add_edge: unknown node " ^ b);
  if String.equal a b then invalid_arg "Qgraph.add_edge: self-loop";
  let k = key a b in
  let pred =
    match Pmap.find_opt k g.edge_map with
    | None -> pred
    | Some existing -> if Predicate.equal existing pred then existing
        else Predicate.And (existing, pred)
  in
  { g with edge_map = Pmap.add k pred g.edge_map }

let singleton ~alias ~base = add_node empty ~alias ~base

let make ns es =
  let g =
    List.fold_left (fun g (alias, base) -> add_node g ~alias ~base) empty ns
  in
  List.fold_left (fun g (a, b, p) -> add_edge g a b p) g es

let nodes g = Smap.bindings g.node_map |> List.map snd
let aliases g = Smap.bindings g.node_map |> List.map fst

let edges g =
  Pmap.bindings g.edge_map |> List.map (fun ((n1, n2), pred) -> { n1; n2; pred })

let node_count g = Smap.cardinal g.node_map
let edge_count g = Pmap.cardinal g.edge_map
let mem_node g a = Smap.mem a g.node_map
let find_node g a = Smap.find_opt a g.node_map
let base_of g a = (Smap.find a g.node_map).base

let find_edge g a b =
  Pmap.find_opt (key a b) g.edge_map
  |> Option.map (fun pred ->
         let n1, n2 = key a b in
         { n1; n2; pred })

let neighbours g a =
  Pmap.fold
    (fun (x, y) _ acc ->
      if String.equal x a then y :: acc else if String.equal y a then x :: acc else acc)
    g.edge_map []
  |> List.sort String.compare

let is_connected g =
  match aliases g with
  | [] -> true
  | start :: _ ->
      let visited = Hashtbl.create 16 in
      let rec dfs a =
        if not (Hashtbl.mem visited a) then begin
          Hashtbl.add visited a ();
          List.iter dfs (neighbours g a)
        end
      in
      dfs start;
      Hashtbl.length visited = node_count g

let induced g keep =
  let keep_set = List.fold_left (fun s a -> Smap.add a () s) Smap.empty keep in
  let node_map = Smap.filter (fun a _ -> Smap.mem a keep_set) g.node_map in
  List.iter
    (fun a ->
      if not (Smap.mem a node_map) then invalid_arg ("Qgraph.induced: unknown alias " ^ a))
    keep;
  let edge_map =
    Pmap.filter (fun (a, b) _ -> Smap.mem a keep_set && Smap.mem b keep_set) g.edge_map
  in
  { node_map; edge_map }

let union g1 g2 =
  let node_map =
    Smap.union
      (fun alias n1 n2 ->
        if String.equal n1.base n2.base then Some n1
        else invalid_arg ("Qgraph.union: alias " ^ alias ^ " bound to two bases"))
      g1.node_map g2.node_map
  in
  let edge_map =
    Pmap.union
      (fun (a, b) p1 p2 ->
        if Predicate.equal p1 p2 then Some p1
        else
          invalid_arg
            (Printf.sprintf "Qgraph.union: edge (%s,%s) relabeled" a b))
      g1.edge_map g2.edge_map
  in
  { node_map; edge_map }

let fresh_alias g base =
  if not (Smap.mem base g.node_map) then base
  else
    let rec go i =
      let candidate = base ^ string_of_int i in
      if Smap.mem candidate g.node_map then go (i + 1) else candidate
    in
    go 2

let node_relation ~lookup g alias =
  let node = Smap.find alias g.node_map in
  match lookup node.base with
  | None -> invalid_arg ("Qgraph.node_relation: unknown base relation " ^ node.base)
  | Some r ->
      let r = Relation.with_name alias r in
      if String.equal node.base alias then r
      else Relation.rename_rel r ~from:node.base ~into:alias

let scheme ~lookup g =
  let schemas =
    List.map (fun n -> Relation.schema (node_relation ~lookup g n.alias)) (nodes g)
  in
  match schemas with
  | [] -> Schema.of_attrs []
  | s :: rest -> List.fold_left Schema.append s rest

let equal g1 g2 =
  Smap.equal (fun a b -> String.equal a.base b.base) g1.node_map g2.node_map
  && Pmap.equal Predicate.equal g1.edge_map g2.edge_map

let pp ppf g =
  let pp_node ppf n =
    if String.equal n.alias n.base then Format.pp_print_string ppf n.alias
    else Format.fprintf ppf "%s:%s" n.alias n.base
  in
  Format.fprintf ppf "nodes {%a} edges {%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_node)
    (nodes g)
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf e -> Format.fprintf ppf "%s-%s [%a]" e.n1 e.n2 Predicate.pp e.pred))
    (edges g)

let to_string g = Format.asprintf "%a" pp g
