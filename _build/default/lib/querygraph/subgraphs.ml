module Sset = Set.Make (String)

(* Wernicke's ESU: for each anchor node v (in sorted order), emit every
   connected set whose minimum element is v.  Growth happens only through
   nodes greater than v that are in the exclusive neighbourhood of the most
   recently added node (tracked via [nbhd], the set of nodes already in the
   subgraph or adjacent to it), which guarantees each set is produced exactly
   once. *)
let fold_connected_node_sets g f init =
  let acc = ref init in
  let emit s = acc := f !acc (Sset.elements s) in
  List.iter
    (fun v ->
      let gt u = String.compare u v > 0 in
      let rec extend sub ext nbhd =
        emit sub;
        let rec loop = function
          | [] -> ()
          | w :: rest ->
              let excl =
                Qgraph.neighbours g w
                |> List.filter (fun u -> gt u && not (Sset.mem u nbhd))
              in
              let nbhd' = List.fold_left (fun s u -> Sset.add u s) nbhd excl in
              extend (Sset.add w sub) (rest @ excl) nbhd';
              loop rest
        in
        loop ext
      in
      let ext0 = Qgraph.neighbours g v |> List.filter gt in
      let nbhd0 = List.fold_left (fun s u -> Sset.add u s) (Sset.singleton v) ext0 in
      extend (Sset.singleton v) ext0 nbhd0)
    (Qgraph.aliases g);
  !acc

let connected_node_sets g =
  fold_connected_node_sets g (fun acc s -> s :: acc) [] |> List.rev

let connected_subgraphs g = List.map (Qgraph.induced g) (connected_node_sets g)
let count g = fold_connected_node_sets g (fun acc _ -> acc + 1) 0

let is_induced_connected g keep =
  keep <> [] && Qgraph.is_connected (Qgraph.induced g keep)
