(** Query graphs (Definition 3.3): undirected, connected graphs whose nodes
    are relation occurrences and whose edges carry conjunctions of join
    predicates.

    A node is an {e occurrence}: an alias (e.g. ["Parents2"]) over a base
    relation (["Parents"]).  The paper assumes copies are renamed apart; the
    node structure makes that explicit and lets us materialize the renamed
    relation on demand. *)

open Relational

type node = { alias : string; base : string }

type edge = {
  n1 : string;  (** alias *)
  n2 : string;  (** alias *)
  pred : Predicate.t;  (** conjunction of join predicates over the two nodes' attrs *)
}

type t

val empty : t

(** [add_node g ~alias ~base].  Raises [Invalid_argument] on duplicate
    alias. *)
val add_node : t -> alias:string -> base:string -> t

(** Add an edge between two existing aliases; the predicate must be strong
    over the combined scheme (checked lazily by callers that have schemas).
    Edges are undirected: [(a,b)] and [(b,a)] are the same edge; adding a
    second edge between the same pair conjoins the predicates. *)
val add_edge : t -> string -> string -> Predicate.t -> t

(** Convenience: a single-node graph. *)
val singleton : alias:string -> base:string -> t

(** Build from node and edge lists. *)
val make : (string * string) list -> (string * string * Predicate.t) list -> t

val nodes : t -> node list  (* sorted by alias *)
val aliases : t -> string list  (* sorted *)
val edges : t -> edge list
val node_count : t -> int
val edge_count : t -> int
val mem_node : t -> string -> bool
val find_node : t -> string -> node option
val base_of : t -> string -> string  (** Raises [Not_found]. *)

(** Edge between two aliases, if any (orientation-insensitive). *)
val find_edge : t -> string -> string -> edge option

(** Aliases adjacent to the given alias. *)
val neighbours : t -> string -> string list

val is_connected : t -> bool

(** Subgraph induced by a set of aliases (keeps edges with both endpoints
    inside). *)
val induced : t -> string list -> t

(** Union of nodes and edges.  Edges present in both with different
    predicates raise [Invalid_argument] (the paper's walk condition forbids
    relabeling existing edges); nodes must agree on base. *)
val union : t -> t -> t

(** Fresh alias for [base] not clashing with existing aliases
    ([Parents2], [Parents3], ...). *)
val fresh_alias : t -> string -> string

(** The combined scheme of the graph: concatenation of each node's base
    schema renamed to its alias, in sorted alias order.  [lookup] resolves a
    base relation name. *)
val scheme : lookup:(string -> Relation.t option) -> t -> Schema.t

(** The relation instance for one node (base relation renamed to alias). *)
val node_relation : lookup:(string -> Relation.t option) -> t -> string -> Relation.t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
