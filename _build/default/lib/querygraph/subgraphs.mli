(** Enumeration of induced connected subgraphs.

    The categories of D(G) (Definition 3.11 and Section 4.2) are indexed by
    the induced connected subgraphs of the query graph; this module
    enumerates them exactly once each, using extension-based enumeration
    (no 2^n subset scan), so chains/trees of realistic size stay cheap. *)

(** All induced connected subgraphs, as alias sets (sorted lists).
    Includes all singletons; excludes the empty set. *)
val connected_node_sets : Qgraph.t -> string list list

(** As query graphs. *)
val connected_subgraphs : Qgraph.t -> Qgraph.t list

(** Number of induced connected subgraphs (without materializing them
    beyond the enumeration itself). *)
val count : Qgraph.t -> int

(** [is_induced_connected g keep] — the subgraph induced by [keep] is
    connected (and non-empty). *)
val is_induced_connected : Qgraph.t -> string list -> bool
