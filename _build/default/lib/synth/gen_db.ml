open Relational

type fk_spec = { target : string; null_prob : float; orphan_prob : float }

let sample_ids st ~rows ~key_space =
  if rows <= key_space then begin
    (* Fisher–Yates prefix over the key space. *)
    let arr = Array.init key_space Fun.id in
    for i = 0 to min (rows - 1) (key_space - 1) do
      let j = i + Random.State.int st (key_space - i) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    Array.to_list (Array.sub arr 0 rows)
  end
  else List.init rows (fun i -> i mod key_space)

let relation st ~name ~rows ~payload_cols ~fks ~key_space =
  let cols =
    "id"
    :: (List.init payload_cols (fun i -> Printf.sprintf "p%d" i)
       @ List.map (fun f -> "fk_" ^ f.target) fks)
  in
  let schema = Schema.make name cols in
  let ids = sample_ids st ~rows ~key_space in
  let tuples =
    List.map
      (fun id ->
        let payload =
          List.init payload_cols (fun i ->
              Value.String (Printf.sprintf "%s-%d-%d" name i (Random.State.int st 1000)))
        in
        let fk_vals =
          List.map
            (fun f ->
              let r = Random.State.float st 1.0 in
              if r < f.null_prob then Value.Null
              else if r < f.null_prob +. f.orphan_prob then
                Value.Int (key_space + Random.State.int st key_space)
              else Value.Int (Random.State.int st key_space))
            fks
        in
        Tuple.make ((Value.Int id :: payload) @ fk_vals))
      ids
  in
  Relation.make name schema tuples

let sparse_tuples st ~rows ~arity ~null_prob ~domain =
  List.init rows (fun _ ->
      Array.init arity (fun _ ->
          if Random.State.float st 1.0 < null_prob then Value.Null
          else Value.Int (Random.State.int st domain)))

let skewed_tuples st ~rows ~arity ~null_prob ~domain ?(zipf_s = 1.0) () =
  (* Inverse-CDF sampling over the (finite) Zipf distribution. *)
  let weights =
    Array.init domain (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) zipf_s)
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make domain 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  let sample () =
    let u = Random.State.float st 1.0 in
    let rec bisect lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then bisect (mid + 1) hi else bisect lo mid
    in
    bisect 0 (domain - 1)
  in
  List.init rows (fun _ ->
      Array.init arity (fun _ ->
          if Random.State.float st 1.0 < null_prob then Value.Null
          else Value.Int (sample ())))
