(** Synthetic schema shapes: a database, the query graph over it, and the
    matching knowledge base — the substrate for the scaling benchmarks (B2,
    B4, B5) and for property tests over random tree graphs. *)

open Relational
module Qgraph = Querygraph.Qgraph

type instance = { db : Database.t; graph : Qgraph.t; kb : Schemakb.Kb.t }

(** [chain st ~n ~rows ...] — relations R1 … Rn, each Ri (i<n) holding a
    foreign key into R(i+1); the query graph is the n-node path. *)
val chain :
  Random.State.t ->
  n:int ->
  rows:int ->
  ?null_prob:float ->
  ?orphan_prob:float ->
  unit ->
  instance

(** [star st ~leaves ~rows ...] — a hub relation [Fact] with one FK per
    leaf dimension [D1 … Dn]; the query graph is the star. *)
val star :
  Random.State.t ->
  leaves:int ->
  rows:int ->
  ?null_prob:float ->
  ?orphan_prob:float ->
  unit ->
  instance

(** A uniformly random tree over [n] relations (random parent for each
    node), for property tests. *)
val random_tree :
  Random.State.t ->
  n:int ->
  rows:int ->
  ?null_prob:float ->
  ?orphan_prob:float ->
  unit ->
  instance
