open Relational
module Qgraph = Querygraph.Qgraph

type instance = { db : Database.t; graph : Qgraph.t; kb : Schemakb.Kb.t }

(* [edges] are (child, parent) pairs: child holds fk_<parent>. *)
let build st ~names ~edges ~rows ~null_prob ~orphan_prob =
  let key_space = max 1 rows in
  let fks_of name =
    List.filter_map
      (fun (c, p) ->
        if String.equal c name then
          Some { Gen_db.target = p; null_prob; orphan_prob }
        else None)
      edges
  in
  let rels =
    List.map
      (fun name ->
        Gen_db.relation st ~name ~rows ~payload_cols:1 ~fks:(fks_of name) ~key_space)
      names
  in
  let constraints =
    List.map
      (fun (c, p) ->
        Integrity.Foreign_key
          { rel = c; cols = [ "fk_" ^ p ]; ref_rel = p; ref_cols = [ "id" ] })
      edges
  in
  let db = Database.of_relations ~constraints rels in
  let graph =
    Qgraph.make
      (List.map (fun n -> (n, n)) names)
      (List.map
         (fun (c, p) ->
           (c, p, Predicate.eq_cols (Attr.make c ("fk_" ^ p)) (Attr.make p "id")))
         edges)
  in
  { db; graph; kb = Schemakb.Kb.of_database db }

let name i = Printf.sprintf "R%d" (i + 1)

let chain st ~n ~rows ?(null_prob = 0.15) ?(orphan_prob = 0.1) () =
  if n < 1 then invalid_arg "Gen_graph.chain: n >= 1 required";
  let names = List.init n name in
  let edges = List.init (n - 1) (fun i -> (name i, name (i + 1))) in
  build st ~names ~edges ~rows ~null_prob ~orphan_prob

let star st ~leaves ~rows ?(null_prob = 0.15) ?(orphan_prob = 0.1) () =
  if leaves < 1 then invalid_arg "Gen_graph.star: leaves >= 1 required";
  let dims = List.init leaves (fun i -> Printf.sprintf "D%d" (i + 1)) in
  let edges = List.map (fun d -> ("Fact", d)) dims in
  build st ~names:("Fact" :: dims) ~edges ~rows ~null_prob ~orphan_prob

let random_tree st ~n ~rows ?(null_prob = 0.15) ?(orphan_prob = 0.1) () =
  if n < 1 then invalid_arg "Gen_graph.random_tree: n >= 1 required";
  let names = List.init n name in
  let edges =
    List.init (n - 1) (fun i ->
        let child = i + 1 in
        let parent = Random.State.int st child in
        (name child, name parent))
  in
  build st ~names ~edges ~rows ~null_prob ~orphan_prob
