lib/synth/gen_graph.ml: Attr Database Gen_db Integrity List Predicate Printf Querygraph Random Relational Schemakb String
