lib/synth/gen_graph.mli: Database Querygraph Random Relational Schemakb
