lib/synth/gen_db.ml: Array Float Fun List Printf Random Relation Relational Schema Tuple Value
