lib/synth/gen_db.mli: Random Relation Relational Tuple
