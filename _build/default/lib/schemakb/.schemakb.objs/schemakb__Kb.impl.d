lib/schemakb/kb.ml: Attr Database Format Integrity List Mine Option Predicate Printf Relational String
