lib/schemakb/profile.ml: Array Attr Database Format Hashtbl List Printf Relation Relational Render Schema Value
