lib/schemakb/kb.mli: Database Format Mine Predicate Relational
