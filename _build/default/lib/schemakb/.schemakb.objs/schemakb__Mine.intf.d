lib/schemakb/mine.mli: Database Format Relational
