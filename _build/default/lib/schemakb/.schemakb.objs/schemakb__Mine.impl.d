lib/schemakb/mine.ml: Array Attr Database Format Hashtbl List Relation Relational Schema String Value
