lib/schemakb/rank.ml: Format Kb List Querygraph String
