lib/schemakb/rank.mli: Format Kb Querygraph
