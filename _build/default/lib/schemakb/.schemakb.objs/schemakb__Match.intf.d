lib/schemakb/match.mli: Attr Database Format Relational
