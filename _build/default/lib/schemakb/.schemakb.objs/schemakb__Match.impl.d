lib/schemakb/match.ml: Array Attr Buffer Database Float Format Fun List Relation Relational Schema Seq String
