lib/schemakb/profile.mli: Attr Database Format Relation Relational Value
