(** Automatic attribute matching — the "automated tool [7]" the paper
    allows as the source of value correspondences (Section 3.1).

    Matching is schematic: source column names are compared to target
    column names by normalized string similarity (token-aware Levenshtein),
    so ["Children.ID" → "Kids.ID"] and ["contact_phone" → "contactPh"]
    score high.  The result is a ranked list of {e candidate}
    correspondences for the user (or a test) to confirm — matching only
    proposes; Clio's data-driven loop verifies. *)

open Relational

type candidate = {
  source : Attr.t;
  target_col : string;
  score : float;  (** 0..1, higher is better *)
}

(** Similarity between two column names: 1.0 for equal after
    normalization (case, underscores); token containment scores at least
    0.75; otherwise 1 - normalized Levenshtein distance. *)
val name_similarity : string -> string -> float

(** All candidates scoring at least [threshold] (default 0.55), best
    first; at most [per_target] (default 3) per target column. *)
val suggest :
  ?threshold:float ->
  ?per_target:int ->
  Database.t ->
  target_cols:string list ->
  candidate list

(** The single best-scoring candidate per target column. *)
val best_per_target :
  ?threshold:float -> Database.t -> target_cols:string list -> candidate list

val pp_candidate : Format.formatter -> candidate -> unit
