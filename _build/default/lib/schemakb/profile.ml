open Relational

type column_stats = {
  rel : string;
  column : string;
  rows : int;
  non_null : int;
  distinct : int;
  null_rate : float;
  is_key_candidate : bool;
  min_value : Value.t;
  max_value : Value.t;
}

let column r a =
  let schema = Relation.schema r in
  let i = Schema.index schema a in
  let seen = Hashtbl.create 64 in
  let non_null = ref 0 in
  let min_v = ref Value.Null and max_v = ref Value.Null in
  Relation.iter
    (fun t ->
      let v = t.(i) in
      if not (Value.is_null v) then begin
        incr non_null;
        if not (Hashtbl.mem seen v) then Hashtbl.add seen v ();
        if Value.is_null !min_v || Value.compare v !min_v < 0 then min_v := v;
        if Value.is_null !max_v || Value.compare v !max_v > 0 then max_v := v
      end)
    r;
  let rows = Relation.cardinality r in
  let distinct = Hashtbl.length seen in
  {
    rel = Relation.name r;
    column = a.Attr.name;
    rows;
    non_null = !non_null;
    distinct;
    null_rate =
      (if rows = 0 then 0.0 else float_of_int (rows - !non_null) /. float_of_int rows);
    is_key_candidate = rows > 0 && !non_null = rows && distinct = rows;
    min_value = !min_v;
    max_value = !max_v;
  }

let relation r =
  Array.to_list (Schema.attrs (Relation.schema r)) |> List.map (column r)

let database db = List.concat_map relation (Database.relations db)

let key_candidates r =
  relation r |> List.filter (fun s -> s.is_key_candidate) |> List.map (fun s -> s.column)

let pp ppf s =
  Format.fprintf ppf "%s.%s: %d rows, %d distinct, %.0f%% null%s" s.rel s.column s.rows
    s.distinct (s.null_rate *. 100.)
    (if s.is_key_candidate then ", key candidate" else "")

let render stats =
  let header =
    [ "column"; "rows"; "non-null"; "distinct"; "null%"; "key?"; "min"; "max" ]
  in
  let rows =
    List.map
      (fun s ->
        [
          s.rel ^ "." ^ s.column;
          string_of_int s.rows;
          string_of_int s.non_null;
          string_of_int s.distinct;
          Printf.sprintf "%.0f" (s.null_rate *. 100.);
          (if s.is_key_candidate then "yes" else "");
          Value.to_string s.min_value;
          Value.to_string s.max_value;
        ])
      stats
  in
  Render.table ~header rows
