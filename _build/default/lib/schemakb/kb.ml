open Relational

type origin = Declared | Mined of float | Asserted

type join_pair = {
  r1 : string;
  r2 : string;
  atoms : (string * string) list;
  origin : origin;
}

type t = { pairs : join_pair list }

let empty = { pairs = [] }

let flip p =
  { p with r1 = p.r2; r2 = p.r1; atoms = List.map (fun (a, b) -> (b, a)) p.atoms }

let same_link a b =
  (String.equal a.r1 b.r1 && String.equal a.r2 b.r2 && a.atoms = b.atoms)
  ||
  let fb = flip b in
  String.equal a.r1 fb.r1 && String.equal a.r2 fb.r2 && a.atoms = fb.atoms

let add t p = if List.exists (same_link p) t.pairs then t else { pairs = t.pairs @ [ p ] }
let pairs t = t.pairs

let joinable t rel =
  List.filter_map
    (fun p ->
      if String.equal p.r1 rel then Some p
      else if String.equal p.r2 rel then Some (flip p)
      else None)
    t.pairs

let of_database db =
  List.fold_left
    (fun kb c ->
      match c with
      | Integrity.Foreign_key { rel; cols; ref_rel; ref_cols } ->
          add kb
            { r1 = rel; r2 = ref_rel; atoms = List.combine cols ref_cols; origin = Declared }
      | Integrity.Primary_key _ | Integrity.Not_null _ -> kb)
    empty (Database.constraints db)

let add_mined t candidates =
  List.fold_left
    (fun kb (c : Mine.candidate) ->
      add kb
        {
          r1 = c.Mine.rel;
          r2 = c.Mine.ref_rel;
          atoms = [ (c.Mine.col, c.Mine.ref_col) ];
          origin = Mined c.Mine.confidence;
        })
    t candidates

let predicate p ~alias1 ~alias2 =
  Predicate.conj
    (List.map
       (fun (c1, c2) -> Predicate.eq_cols (Attr.make alias1 c1) (Attr.make alias2 c2))
       p.atoms)

(* Equality-atom set of a pure equi-predicate, orientation-normalized. *)
let norm_atoms pred =
  Predicate.as_equi_atoms pred
  |> Option.map (fun atoms ->
         atoms
         |> List.map (fun (a, b) -> if Attr.compare a b <= 0 then (a, b) else (b, a))
         |> List.sort compare)

let matches_edge p ~alias1 ~alias2 pred =
  match norm_atoms pred with
  | None -> false
  | Some edge_atoms ->
      (* alias1 may instantiate either side of the pair. *)
      let candidate1 = norm_atoms (predicate p ~alias1 ~alias2) in
      let candidate2 = norm_atoms (predicate (flip p) ~alias1 ~alias2) in
      candidate1 = Some edge_atoms || candidate2 = Some edge_atoms

let pp_origin ppf = function
  | Declared -> Format.pp_print_string ppf "declared"
  | Mined c -> Format.fprintf ppf "mined %.2f" c
  | Asserted -> Format.pp_print_string ppf "asserted"

let pp_pair ppf p =
  Format.fprintf ppf "%s ~ %s on %s (%a)" p.r1 p.r2
    (String.concat " and "
       (List.map (fun (a, b) -> Printf.sprintf "%s.%s = %s.%s" p.r1 a p.r2 b) p.atoms))
    pp_origin p.origin
