(** Inclusion-dependency mining — how Clio "mines the source data" for join
    knowledge when constraints are not declared (Section 5.1).

    A candidate [rel.col ⊆ ref_rel.ref_col] is reported when the non-null
    values of [col] overlap the values of [ref_col] by at least
    [min_overlap], and (if [require_key]) [ref_col] is duplicate-free. *)

open Relational

type candidate = {
  rel : string;
  col : string;
  ref_rel : string;
  ref_col : string;
  confidence : float;  (** fraction of distinct non-null values contained *)
}

(** Scan all ordered column pairs across distinct relations.  Skips empty
    columns.  [min_overlap] defaults to 1.0 (exact inclusion); [require_key]
    defaults to [true]. *)
val inclusion_dependencies :
  ?min_overlap:float -> ?require_key:bool -> Database.t -> candidate list

val pp_candidate : Format.formatter -> candidate -> unit
