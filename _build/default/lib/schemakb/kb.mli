(** Clio's schema knowledge base (Section 5.1): "knowledge of a (possibly
    empty) set of potential query graphs for joining any two source
    relations", gathered from declared constraints and from mining the data.

    The KB stores {e join pairs}: unordered pairs of base relations with the
    column equalities that link them, tagged with their provenance.  The
    walk operator enumerates paths through these pairs. *)

open Relational

type origin =
  | Declared  (** from a foreign key in the catalog *)
  | Mined of float  (** inclusion-dependency mining; payload = confidence *)
  | Asserted  (** input by the user *)

type join_pair = {
  r1 : string;
  r2 : string;
  atoms : (string * string) list;  (** column of [r1] = column of [r2] *)
  origin : origin;
}

type t

val empty : t
val add : t -> join_pair -> t
val pairs : t -> join_pair list

(** Join pairs incident to a base relation; each is returned oriented so
    that its [r1] is the queried relation. *)
val joinable : t -> string -> join_pair list

(** Build a KB from a database's declared foreign keys. *)
val of_database : Database.t -> t

(** Extend with mined pairs (see {!Mine}). *)
val add_mined : t -> Mine.candidate list -> t

(** The predicate for a pair, with [r1]/[r2] replaced by the given aliases. *)
val predicate : join_pair -> alias1:string -> alias2:string -> Predicate.t

(** True when a query-graph edge between these aliases (of the pair's base
    relations) would carry exactly this pair's predicate. *)
val matches_edge :
  join_pair -> alias1:string -> alias2:string -> Predicate.t -> bool

val pp_pair : Format.formatter -> join_pair -> unit
