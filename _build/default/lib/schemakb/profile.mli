(** Source-data profiling — the statistics Clio mines to understand an
    unfamiliar source (Section 5.1: knowledge "gathered from schema and
    constraint definitions and from mining the source data").

    Per-column statistics feed the knowledge base (key candidates, join
    candidates), the CLI's [profile] command, and help users judge
    completeness (null rates surface where outer joins will pad). *)

open Relational

type column_stats = {
  rel : string;
  column : string;
  rows : int;
  non_null : int;
  distinct : int;
  null_rate : float;
  is_key_candidate : bool;  (** no nulls, all distinct, non-empty *)
  min_value : Value.t;  (** [Null] when the column is all null *)
  max_value : Value.t;
}

val column : Relation.t -> Attr.t -> column_stats
val relation : Relation.t -> column_stats list
val database : Database.t -> column_stats list

(** Key-candidate columns of a relation. *)
val key_candidates : Relation.t -> string list

val pp : Format.formatter -> column_stats -> unit

(** Aligned text table for a list of stats (the CLI's profile view). *)
val render : column_stats list -> string
