open Relational

type candidate = { source : Attr.t; target_col : string; score : float }

let normalize s =
  String.lowercase_ascii s
  |> String.to_seq
  |> Seq.filter (fun c -> c <> '_' && c <> '-' && c <> ' ')
  |> String.of_seq

(* Split camelCase / snake_case into lowercase tokens. *)
let tokens s =
  let out = ref [] and buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := String.lowercase_ascii (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      if c = '_' || c = '-' || c = ' ' then flush ()
      else begin
        if c >= 'A' && c <= 'Z' && Buffer.length buf > 0 then begin
          (* camelCase boundary, unless we're inside an acronym *)
          let last = Buffer.nth buf (Buffer.length buf - 1) in
          if not (last >= 'A' && last <= 'Z') then flush ()
        end;
        Buffer.add_char buf c
      end)
    s;
  flush ();
  List.rev !out

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let curr = Array.make (lb + 1) 0 in
  for i = 1 to la do
    curr.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit curr 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let name_similarity a b =
  let na = normalize a and nb = normalize b in
  if String.equal na nb then 1.0
  else
    let ta = tokens a and tb = tokens b in
    let token_contained =
      (ta <> [] && List.for_all (fun t -> List.mem t tb) ta)
      || (tb <> [] && List.for_all (fun t -> List.mem t ta) tb)
    in
    let prefix =
      String.length na >= 3 && String.length nb >= 3
      && (String.starts_with ~prefix:na nb || String.starts_with ~prefix:nb na)
    in
    let lev =
      let d = levenshtein na nb in
      let m = max (String.length na) (String.length nb) in
      if m = 0 then 0.0 else 1.0 -. (float_of_int d /. float_of_int m)
    in
    if token_contained || prefix then Float.max 0.75 lev else lev

let suggest ?(threshold = 0.55) ?(per_target = 3) db ~target_cols =
  let sources =
    List.concat_map
      (fun r ->
        Array.to_list (Schema.attrs (Relation.schema r)))
      (Database.relations db)
  in
  List.concat_map
    (fun target_col ->
      sources
      |> List.filter_map (fun source ->
             let score = name_similarity source.Attr.name target_col in
             if score +. 1e-9 >= threshold then Some { source; target_col; score }
             else None)
      |> List.sort (fun a b ->
             match compare b.score a.score with
             | 0 -> Attr.compare a.source b.source
             | c -> c)
      |> List.filteri (fun i _ -> i < per_target))
    target_cols

let best_per_target ?threshold db ~target_cols =
  suggest ?threshold ~per_target:1 db ~target_cols

let pp_candidate ppf c =
  Format.fprintf ppf "%a -> %s (%.2f)" Attr.pp c.source c.target_col c.score
