(** Ranking heuristics for alternative mappings (Section 6.1): "Clio tries
    to order them from most likely to least likely, using simple heuristics
    related to path length, least perturbation to the current active
    mapping, etc."  Lower score = more likely. *)

module Qgraph = Querygraph.Qgraph

type score = {
  added_nodes : int;  (** perturbation: new nodes vs the old graph *)
  added_edges : int;
  copies : int;  (** aliases whose base already appears under another alias *)
  undeclared_edges : int;  (** edges not backed by a Declared KB pair *)
}

val total : score -> int

(** [score ~kb ~old candidate] — perturbation of [candidate] relative to
    [old], with KB-alignment of its new edges. *)
val score : kb:Kb.t -> old:Qgraph.t -> Qgraph.t -> score

(** Sort candidates by {!total}, ties broken by node count then by a
    deterministic graph rendering. *)
val order : kb:Kb.t -> old:Qgraph.t -> Qgraph.t list -> Qgraph.t list

val pp : Format.formatter -> score -> unit
