module Qgraph = Querygraph.Qgraph

type score = {
  added_nodes : int;
  added_edges : int;
  copies : int;
  undeclared_edges : int;
}

let total s = (2 * s.added_nodes) + s.added_edges + (3 * s.copies) + (2 * s.undeclared_edges)

let score ~kb ~old candidate =
  let old_aliases = Qgraph.aliases old in
  let new_nodes =
    Qgraph.nodes candidate
    |> List.filter (fun n -> not (List.mem n.Qgraph.alias old_aliases))
  in
  let new_edges =
    Qgraph.edges candidate
    |> List.filter (fun e ->
           match Qgraph.find_edge old e.Qgraph.n1 e.Qgraph.n2 with
           | Some _ -> false
           | None -> true)
  in
  let copies =
    List.filter
      (fun n ->
        Qgraph.nodes candidate
        |> List.exists (fun m ->
               (not (String.equal m.Qgraph.alias n.Qgraph.alias))
               && String.equal m.Qgraph.base n.Qgraph.base))
      new_nodes
  in
  let declared e =
    let b1 = Qgraph.base_of candidate e.Qgraph.n1 in
    let b2 = Qgraph.base_of candidate e.Qgraph.n2 in
    Kb.pairs kb
    |> List.exists (fun p ->
           (match p.Kb.origin with Kb.Declared -> true | _ -> false)
           && ((String.equal p.Kb.r1 b1 && String.equal p.Kb.r2 b2)
              || (String.equal p.Kb.r1 b2 && String.equal p.Kb.r2 b1))
           && Kb.matches_edge p ~alias1:e.Qgraph.n1 ~alias2:e.Qgraph.n2 e.Qgraph.pred)
  in
  {
    added_nodes = List.length new_nodes;
    added_edges = List.length new_edges;
    copies = List.length copies;
    undeclared_edges = List.length (List.filter (fun e -> not (declared e)) new_edges);
  }

let order ~kb ~old candidates =
  let keyed =
    List.map
      (fun g ->
        let s = score ~kb ~old g in
        ((total s, Qgraph.node_count g, Qgraph.to_string g), g))
      candidates
  in
  List.sort (fun (ka, _) (kb', _) -> compare ka kb') keyed |> List.map snd

let pp ppf s =
  Format.fprintf ppf "+%d nodes, +%d edges, %d copies, %d undeclared edges (total %d)"
    s.added_nodes s.added_edges s.copies s.undeclared_edges (total s)
