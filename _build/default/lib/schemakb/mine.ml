open Relational

type candidate = {
  rel : string;
  col : string;
  ref_rel : string;
  ref_col : string;
  confidence : float;
}

type column = {
  c_rel : string;
  c_name : string;
  distinct : Value.t list;
  value_set : (Value.t, unit) Hashtbl.t;
  is_key : bool;  (** no duplicates among non-null values and no nulls *)
}

let columns_of db =
  List.concat_map
    (fun r ->
      let schema = Relation.schema r in
      let rname = Relation.name r in
      Array.to_list (Schema.attrs schema)
      |> List.map (fun a ->
             let i = Schema.index schema a in
             let seen = Hashtbl.create 64 in
             let nulls = ref 0 and dups = ref 0 in
             Relation.iter
               (fun t ->
                 let v = t.(i) in
                 if Value.is_null v then incr nulls
                 else if Hashtbl.mem seen v then incr dups
                 else Hashtbl.add seen v ())
               r;
             {
               c_rel = rname;
               c_name = a.Attr.name;
               distinct = Hashtbl.fold (fun v () acc -> v :: acc) seen [];
               value_set = seen;
               is_key = !dups = 0 && !nulls = 0 && Relation.cardinality r > 0;
             }))
    (Database.relations db)

let inclusion_dependencies ?(min_overlap = 1.0) ?(require_key = true) db =
  let cols = columns_of db in
  List.concat_map
    (fun c ->
      if c.distinct = [] then []
      else
        List.filter_map
          (fun ref_c ->
            if String.equal c.c_rel ref_c.c_rel then None
            else if require_key && not ref_c.is_key then None
            else
              let total = List.length c.distinct in
              let contained =
                List.length (List.filter (Hashtbl.mem ref_c.value_set) c.distinct)
              in
              let confidence = float_of_int contained /. float_of_int total in
              if confidence +. 1e-9 >= min_overlap then
                Some
                  {
                    rel = c.c_rel;
                    col = c.c_name;
                    ref_rel = ref_c.c_rel;
                    ref_col = ref_c.c_name;
                    confidence;
                  }
              else None)
          cols)
    cols

let pp_candidate ppf c =
  Format.fprintf ppf "%s.%s ⊆ %s.%s (%.2f)" c.rel c.col c.ref_rel c.ref_col c.confidence
