(** The paper's Figure 1 source database, reconstructed.

    The figures in the available text are partly illegible; this instance
    is engineered so that every claim the prose makes about the data holds
    (each is asserted in [test/test_paperdata.ml]):

    - every parent of a child (mother or father) has a phone entry —
      Example 3.10's [R1 ⊕ R2 = R2], Example 4.3's empty C/CP/CPS
      categories;
    - parent 205 has a phone but no children (the PPh category of Figure 9
      and Example 4.8); parent 206 has neither (category P);
    - phone entry 999 and bus-schedule entry 777 are dangling (categories
      Ph and S);
    - child 009 (Bob) is motherless (Example 6.1) and aged 8, making him
      the negative example under the running filter [C.age < 7];
    - value "002" (Maya) occurs in one attribute of SBPS and two attributes
      of XmasBar (the Section 2 / Figure 5 chase). *)

open Relational

val children : Relation.t
val parents : Relation.t
val phone_dir : Relation.t
val sbps : Relation.t
val xmas_bar : Relation.t
val class_sched : Relation.t

(** All six relations with the declared constraints (keys, the [mid]/[fid]
    foreign keys, not-null IDs). *)
val database : Database.t

(** Clio's join knowledge: the declared FKs plus the asserted pairs used in
    the paper's walks (Parents–PhoneDir, Children–PhoneDir, Children–SBPS,
    Children–ClassSched). *)
val kb : Schemakb.Kb.t

(** Abbreviations used in the paper's coverage tags: Children → "C",
    Parents → "P", Parents2 → "P2", PhoneDir → "Ph", SBPS → "S". *)
val short : string -> string option
