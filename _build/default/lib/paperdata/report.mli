(** Regeneration of every figure and worked example in the paper, as text.

    Each function returns the rendered content of one experiment from the
    per-experiment index in DESIGN.md; [all] lists them with their ids so
    [bin/figures.exe] and [bench/main.exe] can print any subset. *)

val fig1 : unit -> string
(** The source database. *)

val fig2 : unit -> string
(** Correspondences v1–v5, a source sample, and the mapping's target. *)

val fig3 : unit -> string
(** Two scenarios for affiliation (mid vs fid), illustrated with Maya. *)

val fig4 : unit -> string
(** Data-walk scenarios for associating children with phone numbers. *)

val fig5 : unit -> string
(** The chase of value 002 from Children.ID. *)

val fig6 : unit -> string
(** Query graphs G, G1, G2 (text and DOT). *)

val fig7 : unit -> string
(** Tuples t, u, v: full and padded data associations. *)

val fig8 : unit -> string
(** D(G) with coverage tags. *)

val fig9 : unit -> string
(** A sufficient illustration of the running mapping, focused on the four
    children, with its induced target tuples. *)

val fig11 : unit -> string
(** The walk extensions G2–G4 of G1. *)

val fig12 : unit -> string
(** The chase extensions of G1 via value 002. *)

val sql : unit -> string
(** Section 2: generated SQL (canonical and left-outer-join forms) for the
    final mapping, plus the WYSIWYG target view. *)

val example_6_1 : unit -> string
(** Complementary mother/father phone mappings and their assembled target. *)

val example_6_2 : unit -> string
(** Mapping reuse when ArrivalTime gains a second derivation. *)

(** (id, description, render) for every experiment. *)
val all : (string * string * (unit -> string)) list
