(** The paper's running example: the Figure 6 query graphs, the Example
    3.15 mapping (illustrated in Figure 9), the Section 5 walk/chase start
    mapping, and the final Section 2 mapping whose SQL the paper prints. *)

open Relational
module Qgraph = Querygraph.Qgraph

val target : string
(** "Kids" *)

val kids_cols : string list
(** ID, name, affiliation, contactPh, BusSchedule *)

(** Figure 6: G is the path Children —(C.mid = P.ID)— Parents —(P.ID =
    Ph.ID)— PhoneDir; G1 and G2 are the subgraphs induced by
    {Children, Parents} and {Children, Parents, PhoneDir}. *)
val graph_g : Qgraph.t

val graph_g1 : Qgraph.t
val graph_g2 : Qgraph.t

(** The Example 3.15 / Figure 9 graph: PhoneDir — Parents — Children — SBPS
    with edges P.ID = Ph.ID, C.fid = P.ID, C.ID = S.ID. *)
val fig9_graph : Qgraph.t

(** The Example 3.15 mapping: v1–v5 (contactPh concatenates Ph.type and
    Ph.number), C_S = [C.age < 7], C_T = [Kids.ID is not null]. *)
val mapping : Clio.Mapping.t

(** Section 5's starting mapping: graph G1 of Figure 11 (Children —(fid)—
    Parents) with ID, name and affiliation mapped. *)
val mapping_g1 : Clio.Mapping.t

(** The final Section 2 mapping: affiliation from the father (scenario 1 of
    Figure 3), contactPh from the mother's phone (scenario 2 of Figure 4,
    via the Parents2 copy), BusSchedule from SBPS; Kids.ID required. *)
val section2_mapping : Clio.Mapping.t

(** Predicate [C.age < 7] (the running source filter). *)
val age_filter : Predicate.t

(** Predicate [Kids.ID is not null] (the running target filter). *)
val id_required : Predicate.t
