lib/paperdata/figure1.mli: Database Relation Relational Schemakb
