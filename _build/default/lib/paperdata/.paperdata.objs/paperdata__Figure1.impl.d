lib/paperdata/figure1.ml: Database Integrity List Relation Relational Schema Schemakb Tuple Value
