lib/paperdata/running.mli: Clio Predicate Querygraph Relational
