lib/paperdata/running.ml: Attr Clio Expr Predicate Querygraph Relational Value
