lib/paperdata/report.mli:
