open Relational
module Qgraph = Querygraph.Qgraph

let target = "Kids"
let kids_cols = [ "ID"; "name"; "affiliation"; "contactPh"; "BusSchedule" ]

let eq r1 c1 r2 c2 = Predicate.eq_cols (Attr.make r1 c1) (Attr.make r2 c2)

let graph_g =
  Qgraph.make
    [ ("Children", "Children"); ("Parents", "Parents"); ("PhoneDir", "PhoneDir") ]
    [
      ("Children", "Parents", eq "Children" "mid" "Parents" "ID");
      ("Parents", "PhoneDir", eq "Parents" "ID" "PhoneDir" "ID");
    ]

let graph_g1 = Qgraph.induced graph_g [ "Children"; "Parents" ]
let graph_g2 = Qgraph.induced graph_g [ "Children"; "Parents"; "PhoneDir" ]

let fig9_graph =
  Qgraph.make
    [
      ("Children", "Children");
      ("Parents", "Parents");
      ("PhoneDir", "PhoneDir");
      ("SBPS", "SBPS");
    ]
    [
      ("Children", "Parents", eq "Children" "fid" "Parents" "ID");
      ("Parents", "PhoneDir", eq "Parents" "ID" "PhoneDir" "ID");
      ("Children", "SBPS", eq "Children" "ID" "SBPS" "ID");
    ]

let age_filter =
  Predicate.Cmp (Predicate.Lt, Expr.col "Children" "age", Expr.Const (Value.Int 7))

let id_required = Predicate.Is_not_null (Expr.col target "ID")

let contact_ph_expr alias =
  Expr.Concat
    (Expr.Concat (Expr.col alias "type", Expr.Const (Value.String ":")),
     Expr.col alias "number")

let mapping =
  Clio.Mapping.make ~graph:fig9_graph ~target ~target_cols:kids_cols
    ~correspondences:
      [
        Clio.Correspondence.identity "ID" (Attr.make "Children" "ID");
        Clio.Correspondence.identity "name" (Attr.make "Children" "name");
        Clio.Correspondence.identity "affiliation" (Attr.make "Parents" "affiliation");
        Clio.Correspondence.of_expr "contactPh" (contact_ph_expr "PhoneDir");
        Clio.Correspondence.identity "BusSchedule" (Attr.make "SBPS" "time");
      ]
    ~source_filters:[ age_filter ] ~target_filters:[ id_required ] ()

let mapping_g1 =
  Clio.Mapping.make
    ~graph:
      (Qgraph.make
         [ ("Children", "Children"); ("Parents", "Parents") ]
         [ ("Children", "Parents", eq "Children" "fid" "Parents" "ID") ])
    ~target ~target_cols:kids_cols
    ~correspondences:
      [
        Clio.Correspondence.identity "ID" (Attr.make "Children" "ID");
        Clio.Correspondence.identity "name" (Attr.make "Children" "name");
        Clio.Correspondence.identity "affiliation" (Attr.make "Parents" "affiliation");
      ]
    ()

let section2_mapping =
  let graph =
    Qgraph.make
      [
        ("Children", "Children");
        ("Parents", "Parents");
        ("Parents2", "Parents");
        ("PhoneDir", "PhoneDir");
        ("SBPS", "SBPS");
      ]
      [
        ("Children", "Parents", eq "Children" "fid" "Parents" "ID");
        ("Children", "Parents2", eq "Children" "mid" "Parents2" "ID");
        ("Parents2", "PhoneDir", eq "Parents2" "ID" "PhoneDir" "ID");
        ("Children", "SBPS", eq "Children" "ID" "SBPS" "ID");
      ]
  in
  Clio.Mapping.make ~graph ~target ~target_cols:kids_cols
    ~correspondences:
      [
        Clio.Correspondence.identity "ID" (Attr.make "Children" "ID");
        Clio.Correspondence.identity "name" (Attr.make "Children" "name");
        Clio.Correspondence.identity "affiliation" (Attr.make "Parents" "affiliation");
        Clio.Correspondence.identity "contactPh" (Attr.make "PhoneDir" "number");
        Clio.Correspondence.identity "BusSchedule" (Attr.make "SBPS" "time");
      ]
    ~target_filters:[ id_required ] ()
