type t = { rel : string; name : string }

let make rel name = { rel; name }
let to_string a = a.rel ^ "." ^ a.name
let equal a b = String.equal a.rel b.rel && String.equal a.name b.name

let compare a b =
  match String.compare a.rel b.rel with 0 -> String.compare a.name b.name | c -> c

let pp ppf a = Format.pp_print_string ppf (to_string a)

let of_string s =
  match String.index_opt s '.' with
  | None -> invalid_arg ("Attr.of_string: missing '.' in " ^ s)
  | Some i ->
      { rel = String.sub s 0 i; name = String.sub s (i + 1) (String.length s - i - 1) }

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
