type t = { attrs : Attr.t array; index : (Attr.t, int) Hashtbl.t }

let of_attrs l =
  let attrs = Array.of_list l in
  let index = Hashtbl.create (Array.length attrs) in
  Array.iteri
    (fun i a ->
      if Hashtbl.mem index a then
        invalid_arg ("Schema.of_attrs: duplicate attribute " ^ Attr.to_string a);
      Hashtbl.add index a i)
    attrs;
  { attrs; index }

let make rel names = of_attrs (List.map (Attr.make rel) names)
let attrs t = t.attrs
let arity t = Array.length t.attrs
let index_opt t a = Hashtbl.find_opt t.index a

let index t a =
  match index_opt t a with
  | Some i -> i
  | None -> raise Not_found

let mem t a = Hashtbl.mem t.index a

let index_of_name t name =
  let hits = ref [] in
  Array.iteri (fun i a -> if String.equal a.Attr.name name then hits := i :: !hits) t.attrs;
  match !hits with [ i ] -> Some i | _ -> None

let append a b = of_attrs (Array.to_list a.attrs @ Array.to_list b.attrs)

let rels t =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun a ->
      if not (Hashtbl.mem seen a.Attr.rel) then begin
        Hashtbl.add seen a.Attr.rel ();
        order := a.Attr.rel :: !order
      end)
    t.attrs;
  List.rev !order

let positions_of_rel t rel =
  let acc = ref [] in
  Array.iteri (fun i a -> if String.equal a.Attr.rel rel then acc := i :: !acc) t.attrs;
  List.rev !acc

let project t l =
  List.iter
    (fun a ->
      if not (mem t a) then
        invalid_arg ("Schema.project: unknown attribute " ^ Attr.to_string a))
    l;
  of_attrs l

let rename_rel t ~from ~into =
  of_attrs
    (Array.to_list t.attrs
    |> List.map (fun a ->
           if String.equal a.Attr.rel from then Attr.make into a.Attr.name else a))

let equal a b =
  arity a = arity b && Array.for_all2 Attr.equal a.attrs b.attrs

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Attr.pp)
    (Array.to_list t.attrs)

let to_string t = Format.asprintf "%a" pp t
