exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- lexer --- *)

type token =
  | Tint of int
  | Tfloat of float
  | Tstring of string
  | Tident of string  (** possibly dotted *)
  | Tpunct of string  (** operators and parens *)

let is_digit c = c >= '0' && c <= '9'
let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_' || c = '.'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '\'' ->
          let buf = Buffer.create 16 in
          let rec str j =
            if j >= n then fail "unterminated string literal"
            else if s.[j] = '\'' then
              if j + 1 < n && s.[j + 1] = '\'' then begin
                Buffer.add_char buf '\'';
                str (j + 2)
              end
              else j + 1
            else begin
              Buffer.add_char buf s.[j];
              str (j + 1)
            end
          in
          let next = str (i + 1) in
          push (Tstring (Buffer.contents buf));
          go next
      | c when is_digit c ->
          let j = ref i in
          while !j < n && (is_digit s.[!j] || s.[!j] = '.') do incr j done;
          let lit = String.sub s i (!j - i) in
          (match int_of_string_opt lit with
          | Some v -> push (Tint v)
          | None -> (
              match float_of_string_opt lit with
              | Some v -> push (Tfloat v)
              | None -> fail "bad numeric literal %s" lit));
          go !j
      | c when is_ident_char c && not (is_digit c) ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do incr j done;
          push (Tident (String.sub s i (!j - i)));
          go !j
      | '<' when i + 1 < n && (s.[i + 1] = '=' || s.[i + 1] = '>') ->
          push (Tpunct (String.sub s i 2));
          go (i + 2)
      | '>' when i + 1 < n && s.[i + 1] = '=' ->
          push (Tpunct ">=");
          go (i + 2)
      | '!' when i + 1 < n && s.[i + 1] = '=' ->
          push (Tpunct "!=");
          go (i + 2)
      | '|' when i + 1 < n && s.[i + 1] = '|' ->
          push (Tpunct "||");
          go (i + 2)
      | ('=' | '<' | '>' | '+' | '-' | '*' | '(' | ')' | ',') as c ->
          push (Tpunct (String.make 1 c));
          go (i + 1)
      | c -> fail "unexpected character %c" c
  in
  go 0;
  List.rev !toks

(* --- parser: a mutable token cursor --- *)

type cursor = { mutable toks : token list }

let peek cur = match cur.toks with [] -> None | t :: _ -> Some t
let advance cur = match cur.toks with [] -> () | _ :: rest -> cur.toks <- rest

let keyword_of = function
  | Tident id -> Some (String.lowercase_ascii id)
  | _ -> None

let eat_keyword cur kw =
  match peek cur with
  | Some t when keyword_of t = Some kw ->
      advance cur;
      true
  | _ -> false

let expect_punct cur p =
  match peek cur with
  | Some (Tpunct q) when String.equal p q -> advance cur
  | _ -> fail "expected %s" p

let column ~rel id =
  match String.index_opt id '.' with
  | Some i ->
      Expr.Col
        (Attr.make (String.sub id 0 i) (String.sub id (i + 1) (String.length id - i - 1)))
  | None -> (
      match rel with
      | Some r -> Expr.Col (Attr.make r id)
      | None -> fail "unqualified column %s (no default relation)" id)

let rec parse_expr ~rel cur =
  let lhs = parse_term ~rel cur in
  let rec loop lhs =
    match peek cur with
    | Some (Tpunct "+") ->
        advance cur;
        loop (Expr.Add (lhs, parse_term ~rel cur))
    | Some (Tpunct "-") ->
        advance cur;
        loop (Expr.Sub (lhs, parse_term ~rel cur))
    | Some (Tpunct "||") ->
        advance cur;
        loop (Expr.Concat (lhs, parse_term ~rel cur))
    | _ -> lhs
  in
  loop lhs

and parse_term ~rel cur =
  let lhs = parse_factor ~rel cur in
  let rec loop lhs =
    match peek cur with
    | Some (Tpunct "*") ->
        advance cur;
        loop (Expr.Mul (lhs, parse_factor ~rel cur))
    | _ -> lhs
  in
  loop lhs

and parse_factor ~rel cur =
  match peek cur with
  | Some (Tint v) ->
      advance cur;
      Expr.Const (Value.Int v)
  | Some (Tfloat v) ->
      advance cur;
      Expr.Const (Value.Float v)
  | Some (Tstring v) ->
      advance cur;
      Expr.Const (Value.String v)
  | Some (Tpunct "(") ->
      advance cur;
      let e = parse_expr ~rel cur in
      expect_punct cur ")";
      e
  | Some (Tident id) -> (
      match String.lowercase_ascii id with
      | "null" ->
          advance cur;
          Expr.Const Value.Null
      | "true" ->
          advance cur;
          Expr.Const (Value.Bool true)
      | "false" ->
          advance cur;
          Expr.Const (Value.Bool false)
      | "coalesce" ->
          advance cur;
          expect_punct cur "(";
          let a = parse_expr ~rel cur in
          expect_punct cur ",";
          let b = parse_expr ~rel cur in
          expect_punct cur ")";
          Expr.Coalesce (a, b)
      | _ ->
          advance cur;
          column ~rel id)
  | Some (Tpunct p) -> fail "unexpected token %s" p
  | None -> fail "unexpected end of input"

let cmp_of = function
  | "=" -> Predicate.Eq
  | "<>" | "!=" -> Predicate.Neq
  | "<" -> Predicate.Lt
  | "<=" -> Predicate.Le
  | ">" -> Predicate.Gt
  | ">=" -> Predicate.Ge
  | p -> fail "unknown comparison %s" p

let rec parse_pred ~rel cur =
  let lhs = parse_conj ~rel cur in
  if eat_keyword cur "or" then Predicate.Or (lhs, parse_pred ~rel cur) else lhs

and parse_conj ~rel cur =
  let lhs = parse_atom ~rel cur in
  if eat_keyword cur "and" then Predicate.And (lhs, parse_conj ~rel cur) else lhs

and parse_atom ~rel cur =
  if eat_keyword cur "not" then Predicate.Not (parse_atom ~rel cur)
  else
    match peek cur with
    (* "(" is ambiguous: predicate grouping or a parenthesized expression
       starting a comparison.  Try predicate first, backtracking on
       failure. *)
    | Some (Tpunct "(") -> (
        let saved = cur.toks in
        try
          advance cur;
          let p = parse_pred ~rel cur in
          expect_punct cur ")";
          (* Must be followed by a boolean context, not a comparison. *)
          match peek cur with
          | Some (Tpunct ("=" | "<>" | "!=" | "<" | "<=" | ">" | ">=")) ->
              cur.toks <- saved;
              parse_comparison ~rel cur
          | _ -> p
        with Parse_error _ ->
          cur.toks <- saved;
          parse_comparison ~rel cur)
    | Some t when keyword_of t = Some "true" && List.length cur.toks = 1 ->
        advance cur;
        Predicate.True
    | Some t when keyword_of t = Some "false" && List.length cur.toks = 1 ->
        advance cur;
        Predicate.False
    | _ -> parse_comparison ~rel cur

and parse_comparison ~rel cur =
  let lhs = parse_expr ~rel cur in
  if eat_keyword cur "is" then
    if eat_keyword cur "not" then
      if eat_keyword cur "null" then Predicate.Is_not_null lhs
      else fail "expected null after is not"
    else if eat_keyword cur "null" then Predicate.Is_null lhs
    else fail "expected null after is"
  else
    match peek cur with
    | Some (Tpunct (("=" | "<>" | "!=" | "<" | "<=" | ">" | ">=") as p)) ->
        advance cur;
        let rhs = parse_expr ~rel cur in
        Predicate.Cmp (cmp_of p, lhs, rhs)
    | _ -> fail "expected a comparison operator"

let finish cur what v =
  match cur.toks with
  | [] -> v
  | _ -> fail "trailing tokens after %s" what

let expr ?rel s =
  let cur = { toks = tokenize s } in
  finish cur "expression" (parse_expr ~rel cur)

let predicate ?rel s =
  let cur = { toks = tokenize s } in
  finish cur "predicate" (parse_pred ~rel cur)

let expr_opt ?rel s = try Some (expr ?rel s) with Parse_error _ -> None
let predicate_opt ?rel s = try Some (predicate ?rel s) with Parse_error _ -> None
