(** Parser for the SQL-ish expression and predicate surface syntax used by
    the CLI and tests.

    Grammar (precedence low → high):

    {v
    pred    ::= disj
    disj    ::= conj { "or" conj }
    conj    ::= atom { "and" atom }
    atom    ::= "not" atom | "(" pred ")" | expr cmp expr
              | expr "is" "null" | expr "is" "not" "null"
              | "true" | "false"
    cmp     ::= "=" | "<>" | "!=" | "<" | "<=" | ">" | ">="
    expr    ::= term { ("+" | "-" | "||") term }
    term    ::= factor { "*" factor }
    factor  ::= literal | column | "(" expr ")"
              | "coalesce" "(" expr "," expr ")"
    column  ::= ident "." ident | ident          (unqualified needs ~rel)
    literal ::= integer | float | 'string' | "null" | "true" | "false"
    v}

    Keywords are case-insensitive.  Unqualified column names are resolved
    against the default relation [~rel] when given, otherwise rejected. *)

exception Parse_error of string

(** Parse a scalar expression. Raises {!Parse_error}. *)
val expr : ?rel:string -> string -> Expr.t

(** Parse a predicate. Raises {!Parse_error}. *)
val predicate : ?rel:string -> string -> Predicate.t

(** Option-returning variants. *)
val expr_opt : ?rel:string -> string -> Expr.t option

val predicate_opt : ?rel:string -> string -> Predicate.t option
