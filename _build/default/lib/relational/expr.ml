type t =
  | Const of Value.t
  | Col of Attr.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Concat of t * t
  | Coalesce of t * t

let const v = Const v
let col rel name = Col (Attr.make rel name)

let columns e =
  let rec go acc = function
    | Const _ -> acc
    | Col a -> a :: acc
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Concat (a, b) | Coalesce (a, b) ->
        go (go acc a) b
  in
  List.rev (go [] e)

let rec compile schema = function
  | Const v -> fun _ -> v
  | Col a ->
      let i = Schema.index schema a in
      fun t -> t.(i)
  | Add (a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun t -> Value.add (fa t) (fb t)
  | Sub (a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun t -> Value.sub (fa t) (fb t)
  | Mul (a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun t -> Value.mul (fa t) (fb t)
  | Concat (a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun t -> Value.concat (fa t) (fb t)
  | Coalesce (a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun t ->
        let v = fa t in
        if Value.is_null v then fb t else v

let eval schema e t = compile schema e t

let rec rename_rel e ~from ~into =
  match e with
  | Const _ -> e
  | Col a -> if String.equal a.Attr.rel from then Col (Attr.make into a.Attr.name) else e
  | Add (a, b) -> Add (rename_rel a ~from ~into, rename_rel b ~from ~into)
  | Sub (a, b) -> Sub (rename_rel a ~from ~into, rename_rel b ~from ~into)
  | Mul (a, b) -> Mul (rename_rel a ~from ~into, rename_rel b ~from ~into)
  | Concat (a, b) -> Concat (rename_rel a ~from ~into, rename_rel b ~from ~into)
  | Coalesce (a, b) -> Coalesce (rename_rel a ~from ~into, rename_rel b ~from ~into)

let rec to_sql = function
  | Const v -> Value.to_sql v
  | Col a -> Attr.to_string a
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (to_sql a) (to_sql b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_sql a) (to_sql b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_sql a) (to_sql b)
  | Concat (a, b) -> Printf.sprintf "(%s || %s)" (to_sql a) (to_sql b)
  | Coalesce (a, b) -> Printf.sprintf "coalesce(%s, %s)" (to_sql a) (to_sql b)

let pp ppf e = Format.pp_print_string ppf (to_sql e)
