type occurrence = { rel : string; column : string; count : int }

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* value -> (rel, column) -> count *)
type t = { table : (string * string, int) Hashtbl.t Vtbl.t }

let build db =
  let table = Vtbl.create 1024 in
  List.iter
    (fun r ->
      let rel = Relation.name r in
      let attrs = Schema.attrs (Relation.schema r) in
      Relation.iter
        (fun tup ->
          Array.iteri
            (fun i v ->
              if not (Value.is_null v) then begin
                let by_loc =
                  match Vtbl.find_opt table v with
                  | Some h -> h
                  | None ->
                      let h = Hashtbl.create 4 in
                      Vtbl.add table v h;
                      h
                in
                let key = (rel, attrs.(i).Attr.name) in
                Hashtbl.replace by_loc key
                  (1 + Option.value (Hashtbl.find_opt by_loc key) ~default:0)
              end)
            tup)
        r)
    (Database.relations db);
  { table }

let find t v =
  match Vtbl.find_opt t.table v with
  | None -> []
  | Some by_loc ->
      Hashtbl.fold
        (fun (rel, column) count acc -> { rel; column; count } :: acc)
        by_loc []
      |> List.sort (fun a b ->
             match String.compare a.rel b.rel with
             | 0 -> String.compare a.column b.column
             | c -> c)

let distinct_values t = Vtbl.length t.table

let agrees_with_scan t db v =
  let scanned =
    Database.find_value db v
    |> List.map (fun (rel, column, count) -> { rel; column; count })
    |> List.sort compare
  in
  let indexed = find t v |> List.sort compare in
  scanned = indexed
