(** Minimal CSV reader/writer for loading source databases into the tool.

    Supports RFC-4180-style quoting (double quotes, escaped by doubling),
    which is enough for the CLI's data-loading path. *)

(** Parse CSV text into rows of cells. *)
val parse_string : string -> string list list

(** [relation_of_string ~name csv] — first row is the header (column names);
    remaining rows become tuples via {!Value.of_csv_cell}. *)
val relation_of_string : name:string -> string -> Relation.t

val relation_of_file : name:string -> string -> Relation.t

(** Load every [*.csv] file of a directory as a relation named after the
    file (sorted by filename). *)
val database_of_dir : string -> Database.t

(** Render a relation as CSV (header + rows). *)
val relation_to_string : Relation.t -> string
