type t = Value.t array

let make = Array.of_list
let arity = Array.length
let get t i = t.(i)
let value schema t a = t.(Schema.index schema a)
let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i = Array.length a then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 t
let all_null t = Array.for_all Value.is_null t
let nulls n = Array.make n Value.Null
let concat = Array.append
let project t positions = Array.of_list (List.map (fun i -> t.(i)) positions)

let subsumes t1 t2 =
  let n = Array.length t1 in
  n = Array.length t2
  &&
  let rec go i =
    if i = n then true
    else if Value.is_null t2.(i) then go (i + 1)
    else if Value.equal t1.(i) t2.(i) then go (i + 1)
    else false
  in
  go 0

let strictly_subsumes t1 t2 = subsumes t1 t2 && not (equal t1 t2)

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t
