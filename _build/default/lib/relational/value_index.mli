(** Inverted value index over a database: value → every (relation, column)
    where it occurs.

    The data chase (Section 5.2) must locate "all occurrences of the value
    within the data source"; scanning every cell per chase is linear in the
    database, while this index answers in (amortized) constant time.  Bench
    B5 compares the two.  The index is immutable and built once per
    database snapshot. *)

type occurrence = { rel : string; column : string; count : int }

type t

(** Build by one full scan.  Nulls are not indexed. *)
val build : Database.t -> t

(** Occurrences of a value, in relation-then-column order. *)
val find : t -> Value.t -> occurrence list

(** Number of distinct indexed values. *)
val distinct_values : t -> int

(** Consistency with {!Database.find_value} (test oracle). *)
val agrees_with_scan : t -> Database.t -> Value.t -> bool
