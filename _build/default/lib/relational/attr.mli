(** Qualified attribute names.

    An attribute is identified by the {e node name} that owns it (a base
    relation name, or an alias such as ["Parents2"] when a mapping uses
    multiple copies of a relation — see Section 3 of the paper) and the column
    name within it. *)

type t = { rel : string; name : string }

val make : string -> string -> t

(** ["Rel.name"] rendering. *)
val to_string : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Parse ["Rel.name"]; raises [Invalid_argument] when there is no dot. *)
val of_string : string -> t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
