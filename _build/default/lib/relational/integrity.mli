(** Integrity constraints: keys, foreign keys and not-null columns.

    Constraints play two roles in the paper: Clio uses foreign keys to
    propose join paths (Section 5.1), and target constraints (e.g. a
    not-null key) drive data trimming (Sections 2 and 3.3). *)

type t =
  | Primary_key of string * string list  (** relation, key columns *)
  | Foreign_key of { rel : string; cols : string list; ref_rel : string; ref_cols : string list }
  | Not_null of string * string  (** relation, column *)

type violation = { constr : t; detail : string }

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Check a single constraint against relations fetched via [lookup]
    (relation name → relation).  Unknown relations/columns are reported as
    violations rather than exceptions, so loading malformed data is
    diagnosable. *)
val check : lookup:(string -> Relation.t option) -> t -> violation list

(** Join predicate induced by a foreign key (child.col = parent.ref_col
    conjunction). [None] for non-FK constraints. *)
val join_predicate : t -> Predicate.t option
