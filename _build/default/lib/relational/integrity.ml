type t =
  | Primary_key of string * string list
  | Foreign_key of { rel : string; cols : string list; ref_rel : string; ref_cols : string list }
  | Not_null of string * string

type violation = { constr : t; detail : string }

let pp ppf = function
  | Primary_key (r, cols) ->
      Format.fprintf ppf "PRIMARY KEY %s(%s)" r (String.concat ", " cols)
  | Foreign_key { rel; cols; ref_rel; ref_cols } ->
      Format.fprintf ppf "FOREIGN KEY %s(%s) REFERENCES %s(%s)" rel
        (String.concat ", " cols) ref_rel
        (String.concat ", " ref_cols)
  | Not_null (r, c) -> Format.fprintf ppf "NOT NULL %s.%s" r c

let to_string c = Format.asprintf "%a" pp c

let violation constr detail = { constr; detail }

let column_positions rel cols =
  let schema = Relation.schema rel in
  List.map
    (fun c ->
      match Schema.index_opt schema (Attr.make (Relation.name rel) c) with
      | Some i -> Ok i
      | None -> Error c)
    cols

let rec collect_errors = function
  | [] -> Ok []
  | Ok x :: rest -> Result.map (fun xs -> x :: xs) (collect_errors rest)
  | Error c :: _ -> Error c

let check ~lookup constr =
  let missing_rel name = [ violation constr ("unknown relation " ^ name) ] in
  let missing_col rel c =
    [ violation constr (Printf.sprintf "unknown column %s.%s" rel c) ]
  in
  match constr with
  | Primary_key (rname, cols) -> (
      match lookup rname with
      | None -> missing_rel rname
      | Some rel -> (
          match collect_errors (column_positions rel cols) with
          | Error c -> missing_col rname c
          | Ok positions ->
              let seen = Hashtbl.create 16 in
              Relation.fold
                (fun acc t ->
                  let key = List.map (fun i -> t.(i)) positions in
                  if List.exists Value.is_null key then
                    violation constr
                      (Printf.sprintf "null key in %s" (Tuple.to_string t))
                    :: acc
                  else if Hashtbl.mem seen key then
                    violation constr
                      (Printf.sprintf "duplicate key %s"
                         (String.concat "," (List.map Value.to_string key)))
                    :: acc
                  else begin
                    Hashtbl.add seen key ();
                    acc
                  end)
                [] rel))
  | Not_null (rname, col) -> (
      match lookup rname with
      | None -> missing_rel rname
      | Some rel -> (
          match collect_errors (column_positions rel [ col ]) with
          | Error c -> missing_col rname c
          | Ok [ i ] ->
              Relation.fold
                (fun acc t ->
                  if Value.is_null t.(i) then
                    violation constr
                      (Printf.sprintf "null in %s of %s" col (Tuple.to_string t))
                    :: acc
                  else acc)
                [] rel
          | Ok _ -> assert false))
  | Foreign_key { rel = rname; cols; ref_rel; ref_cols } -> (
      match (lookup rname, lookup ref_rel) with
      | None, _ -> missing_rel rname
      | _, None -> missing_rel ref_rel
      | Some child, Some parent -> (
          match
            (collect_errors (column_positions child cols),
             collect_errors (column_positions parent ref_cols))
          with
          | Error c, _ -> missing_col rname c
          | _, Error c -> missing_col ref_rel c
          | Ok child_pos, Ok parent_pos ->
              let keys = Hashtbl.create 64 in
              Relation.iter
                (fun t ->
                  let key = List.map (fun i -> t.(i)) parent_pos in
                  if not (List.exists Value.is_null key) then
                    Hashtbl.replace keys key ())
                parent;
              Relation.fold
                (fun acc t ->
                  let key = List.map (fun i -> t.(i)) child_pos in
                  (* SQL FK semantics: rows with a null FK component pass. *)
                  if List.exists Value.is_null key || Hashtbl.mem keys key then acc
                  else
                    violation constr
                      (Printf.sprintf "dangling reference %s"
                         (String.concat "," (List.map Value.to_string key)))
                    :: acc)
                [] child))

let join_predicate = function
  | Foreign_key { rel; cols; ref_rel; ref_cols } ->
      let atoms =
        List.map2
          (fun c rc -> Predicate.eq_cols (Attr.make rel c) (Attr.make ref_rel rc))
          cols ref_cols
      in
      Some (Predicate.conj atoms)
  | Primary_key _ | Not_null _ -> None
