let table ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let widths =
    List.init ncols (fun i ->
        List.fold_left (fun m row -> max m (String.length (cell row i))) 0 all)
  in
  let line row =
    List.mapi
      (fun i w ->
        let c = cell row i in
        c ^ String.make (w - String.length c) ' ')
      widths
    |> String.concat " | "
    |> fun s -> "| " ^ s ^ " |"
  in
  let sep =
    List.map (fun w -> String.make (w + 2) '-') widths
    |> String.concat "+"
    |> fun s -> "+" ^ s ^ "+"
  in
  String.concat "\n" (sep :: line header :: sep :: List.map line rows)
  ^ "\n" ^ sep

let headers_of ?qualified schema =
  let multi = List.length (Schema.rels schema) > 1 in
  let qualified = Option.value qualified ~default:multi in
  Array.to_list (Schema.attrs schema)
  |> List.map (fun a -> if qualified then Attr.to_string a else a.Attr.name)

let relation ?qualified r =
  let schema = Relation.schema r in
  let header = headers_of ?qualified schema in
  let rows =
    Relation.tuples r
    |> List.map (fun t -> Array.to_list (Array.map Value.to_string t))
  in
  Relation.name r ^ "\n" ^ table ~header rows

let annotated ?qualified ~annot_header rows schema =
  let header = annot_header :: headers_of ?qualified schema in
  let body =
    List.map
      (fun (annot, t) -> annot :: Array.to_list (Array.map Value.to_string t))
      rows
  in
  table ~header body
