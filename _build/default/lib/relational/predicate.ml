type cmp = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of cmp * Expr.t * Expr.t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of Expr.t
  | Is_not_null of Expr.t

let eq_cols a b = Cmp (Eq, Expr.Col a, Expr.Col b)
let conj = function [] -> True | p :: ps -> List.fold_left (fun a b -> And (a, b)) p ps

let columns p =
  let rec go acc = function
    | True | False -> acc
    | Cmp (_, a, b) -> Expr.columns b @ Expr.columns a @ acc
    | And (a, b) | Or (a, b) -> go (go acc a) b
    | Not a -> go acc a
    | Is_null e | Is_not_null e -> Expr.columns e @ acc
  in
  List.rev (go [] p)

(* Three-valued logic: [Some b] known, [None] unknown. *)
let rec eval3 schema = function
  | True -> fun _ -> Some true
  | False -> fun _ -> Some false
  | Cmp (op, a, b) ->
      let fa = Expr.compile schema a and fb = Expr.compile schema b in
      fun t -> (
        match op with
        | Eq -> Value.sql_eq (fa t) (fb t)
        | Neq -> Option.map not (Value.sql_eq (fa t) (fb t))
        | Lt -> Option.map (fun c -> c < 0) (Value.sql_compare (fa t) (fb t))
        | Le -> Option.map (fun c -> c <= 0) (Value.sql_compare (fa t) (fb t))
        | Gt -> Option.map (fun c -> c > 0) (Value.sql_compare (fa t) (fb t))
        | Ge -> Option.map (fun c -> c >= 0) (Value.sql_compare (fa t) (fb t)))
  | And (a, b) ->
      let fa = eval3 schema a and fb = eval3 schema b in
      fun t -> (
        match (fa t, fb t) with
        | Some false, _ | _, Some false -> Some false
        | Some true, Some true -> Some true
        | _ -> None)
  | Or (a, b) ->
      let fa = eval3 schema a and fb = eval3 schema b in
      fun t -> (
        match (fa t, fb t) with
        | Some true, _ | _, Some true -> Some true
        | Some false, Some false -> Some false
        | _ -> None)
  | Not a ->
      let fa = eval3 schema a in
      fun t -> Option.map not (fa t)
  | Is_null e ->
      let fe = Expr.compile schema e in
      fun t -> Some (Value.is_null (fe t))
  | Is_not_null e ->
      let fe = Expr.compile schema e in
      fun t -> Some (not (Value.is_null (fe t)))

let compile schema p =
  let f = eval3 schema p in
  fun t -> match f t with Some true -> true | Some false | None -> false

let eval schema p t = compile schema p t
let is_strong schema p = not (eval schema p (Tuple.nulls (Schema.arity schema)))

let as_equi_atoms p =
  let rec go acc = function
    | Cmp (Eq, Expr.Col a, Expr.Col b) -> Some ((a, b) :: acc)
    | And (a, b) -> Option.bind (go acc a) (fun acc -> go acc b)
    | True -> Some acc
    | _ -> None
  in
  Option.map List.rev (go [] p)

let rename_expr = Expr.rename_rel

let rec rename_rel p ~from ~into =
  match p with
  | True | False -> p
  | Cmp (op, a, b) -> Cmp (op, rename_expr a ~from ~into, rename_expr b ~from ~into)
  | And (a, b) -> And (rename_rel a ~from ~into, rename_rel b ~from ~into)
  | Or (a, b) -> Or (rename_rel a ~from ~into, rename_rel b ~from ~into)
  | Not a -> Not (rename_rel a ~from ~into)
  | Is_null e -> Is_null (rename_expr e ~from ~into)
  | Is_not_null e -> Is_not_null (rename_expr e ~from ~into)

let cmp_sql = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec to_sql = function
  | True -> "true"
  | False -> "false"
  | Cmp (op, a, b) -> Printf.sprintf "%s %s %s" (Expr.to_sql a) (cmp_sql op) (Expr.to_sql b)
  | And (a, b) -> Printf.sprintf "(%s and %s)" (to_sql a) (to_sql b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (to_sql a) (to_sql b)
  | Not a -> Printf.sprintf "not (%s)" (to_sql a)
  | Is_null e -> Printf.sprintf "%s is null" (Expr.to_sql e)
  | Is_not_null e -> Printf.sprintf "%s is not null" (Expr.to_sql e)

let pp ppf p = Format.pp_print_string ppf (to_sql p)
let equal a b = a = b
