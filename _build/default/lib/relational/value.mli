(** Atomic attribute values, including SQL-style [Null].

    Values are the leaves of the relational model used throughout the
    reproduction.  Comparison follows SQL intuition where it matters for the
    paper's definitions: [Null] never equals anything under
    {!sql_eq} (so join predicates are {e strong} in the sense of Section 3 of
    the paper), while {!compare} provides an arbitrary but consistent total
    order used for sorting and indexing. *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

(** Structural equality; [Null] equals [Null].  Used for set semantics of
    relations and for subsumption, where two null fields agree. *)
val equal : t -> t -> bool

(** Total order over values (constructor rank first, payload second;
    [Int]s and [Float]s are compared numerically across constructors). *)
val compare : t -> t -> int

(** SQL-flavoured equality used by predicates: [None] when either side is
    [Null] (unknown), [Some b] otherwise. *)
val sql_eq : t -> t -> bool option

(** SQL-flavoured ordering used by predicates: [None] when either side is
    [Null], otherwise [Some c] with [c] as {!compare} restricted to
    like-kinded values (numeric across [Int]/[Float]). *)
val sql_compare : t -> t -> int option

val is_null : t -> bool

(** Best-effort numeric view; [None] for non-numeric or [Null]. *)
val to_float : t -> float option

(** Arithmetic lifted over values; [Null] propagates, non-numeric operands
    yield [Null]. Integer arithmetic is preserved when both sides are [Int]. *)
val add : t -> t -> t

val sub : t -> t -> t
val mul : t -> t -> t

(** String concatenation; [Null] if either operand is [Null]; non-string
    operands are rendered with {!to_string} first. *)
val concat : t -> t -> t

(** Rendering used by table printers and SQL generation ([Null] prints as
    ["null"], strings unquoted). *)
val to_string : t -> string

(** SQL literal rendering (strings single-quoted, [Null] as [NULL]). *)
val to_sql : t -> string

(** Parse a CSV cell: empty or ["null"] is [Null]; otherwise tries [Int],
    [Float], [Bool], falling back to [String]. *)
val of_csv_cell : string -> t

val pp : Format.formatter -> t -> unit
val hash : t -> int
