(** Plain-text table rendering — the reproduction's stand-in for Clio's GUI
    workspaces and target viewer. *)

(** Render a relation as an aligned ASCII table.  [qualified] controls
    whether headers show ["Rel.col"] or just ["col"] (default: qualified
    when the schema spans several nodes). *)
val relation : ?qualified:bool -> Relation.t -> string

(** Render arbitrary rows with a header. *)
val table : header:string list -> string list list -> string

(** Render with an extra leading annotation column (e.g. coverage tags or
    +/- example polarity). *)
val annotated :
  ?qualified:bool -> annot_header:string -> (string * Tuple.t) list -> Schema.t -> string
