(** Relation schemes: an ordered sequence of qualified attributes.

    The order fixes the physical layout of tuples ({!Tuple.t} is a value
    array indexed by schema position), so all relational operators translate
    attribute references to integer offsets exactly once. *)

type t

(** Build from an attribute list. Raises [Invalid_argument] on duplicates. *)
val of_attrs : Attr.t list -> t

(** Convenience: a scheme for one node, [make rel ["a"; "b"]]. *)
val make : string -> string list -> t

val attrs : t -> Attr.t array
val arity : t -> int

(** Position of an attribute. Raises [Not_found]. *)
val index : t -> Attr.t -> int

val index_opt : t -> Attr.t -> int option
val mem : t -> Attr.t -> bool

(** Position of the unique attribute with the given column [name], regardless
    of owning node. [None] when absent or ambiguous. *)
val index_of_name : t -> string -> int option

(** Concatenation; raises [Invalid_argument] on attribute clashes. *)
val append : t -> t -> t

(** All distinct node names appearing in the scheme, in first-occurrence
    order. *)
val rels : t -> string list

(** Positions owned by the given node name. *)
val positions_of_rel : t -> string -> int list

(** Schema for a sub-list of attributes (projection). *)
val project : t -> Attr.t list -> t

(** Rename the owning node of every attribute ([rename ~from ~into]). *)
val rename_rel : t -> from:string -> into:string -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
