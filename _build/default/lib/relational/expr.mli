(** Scalar expressions over tuples: constants, column references and the
    arithmetic/string operators value correspondences and predicates need. *)

type t =
  | Const of Value.t
  | Col of Attr.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Concat of t * t
      (** String concatenation, null-propagating (see {!Value.concat}). *)
  | Coalesce of t * t  (** First non-null operand. *)

val const : Value.t -> t
val col : string -> string -> t

(** Attributes referenced anywhere in the expression. *)
val columns : t -> Attr.t list

(** Compile against a schema to an index-based evaluator. Raises
    [Not_found] if a referenced column is absent from the schema. *)
val compile : Schema.t -> t -> Tuple.t -> Value.t

(** One-shot evaluation ({!compile} then apply). *)
val eval : Schema.t -> t -> Tuple.t -> Value.t

(** Rename the owning node of every referenced column. *)
val rename_rel : t -> from:string -> into:string -> t

(** SQL-ish rendering, e.g. ["P.salary + P2.salary"]. *)
val to_sql : t -> string

val pp : Format.formatter -> t -> unit
