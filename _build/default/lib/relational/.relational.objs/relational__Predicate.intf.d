lib/relational/predicate.mli: Attr Expr Format Schema Tuple
