lib/relational/expr.mli: Attr Format Schema Tuple Value
