lib/relational/relation.mli: Attr Format Schema Tuple Value
