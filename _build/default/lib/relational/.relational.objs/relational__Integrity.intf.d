lib/relational/integrity.mli: Format Predicate Relation
