lib/relational/database.ml: Array Attr Hashtbl Integrity List Relation Schema Value
