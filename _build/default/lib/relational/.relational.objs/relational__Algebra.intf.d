lib/relational/algebra.mli: Attr Predicate Relation Schema
