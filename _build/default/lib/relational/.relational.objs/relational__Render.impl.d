lib/relational/render.ml: Array Attr List Option Relation Schema String Value
