lib/relational/integrity.ml: Array Attr Format Hashtbl List Predicate Printf Relation Result Schema String Tuple Value
