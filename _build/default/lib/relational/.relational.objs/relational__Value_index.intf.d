lib/relational/value_index.mli: Database Value
