lib/relational/parse.mli: Expr Predicate
