lib/relational/parse.ml: Attr Buffer Expr List Predicate Printf String Value
