lib/relational/attr.mli: Format Map Set
