lib/relational/render.mli: Relation Schema Tuple
