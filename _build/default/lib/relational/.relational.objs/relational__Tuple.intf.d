lib/relational/tuple.mli: Attr Format Schema Value
