lib/relational/database.mli: Integrity Relation Value
