lib/relational/csv_io.ml: Array Attr Buffer Database Filename List Printf Relation Schema String Sys Tuple Value
