lib/relational/expr.ml: Array Attr Format List Printf Schema String Value
