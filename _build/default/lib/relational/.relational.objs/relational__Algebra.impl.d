lib/relational/algebra.ml: Array Attr Hashtbl List Predicate Relation Schema Tuple Value
