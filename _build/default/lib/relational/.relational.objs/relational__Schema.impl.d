lib/relational/schema.ml: Array Attr Format Hashtbl List String
