lib/relational/predicate.ml: Expr Format List Option Printf Schema Tuple Value
