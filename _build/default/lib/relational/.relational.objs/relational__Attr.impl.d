lib/relational/attr.ml: Format Map Set String
