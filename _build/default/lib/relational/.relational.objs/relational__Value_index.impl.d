lib/relational/value_index.ml: Array Attr Database Hashtbl List Option Relation Schema String Value
