(** Predicates over tuples, with the paper's {e strong predicate} semantics.

    Comparisons follow SQL three-valued logic collapsed to boolean at the
    top: a comparison involving [Null] is unknown, and unknown conjuncts make
    the predicate false — exactly the behaviour needed for Definition 3's
    strong join predicates.  [Is_null]/[Is_not_null] are the deliberate
    exceptions (selection predicates need not be strong, Section 3). *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of cmp * Expr.t * Expr.t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of Expr.t
  | Is_not_null of Expr.t

(** [eq_cols a b] — the equi-join predicate [a = b]. *)
val eq_cols : Attr.t -> Attr.t -> t

(** Conjunction of a list ([True] for []). *)
val conj : t list -> t

val columns : t -> Attr.t list

(** Compile to an index-based evaluator over tuples of the given schema. *)
val compile : Schema.t -> t -> Tuple.t -> bool

val eval : Schema.t -> t -> Tuple.t -> bool

(** A predicate is {e strong} iff it evaluates to false on the all-null
    tuple over the given schema (Section 3 / Galindo-Legaria).  This checks
    by evaluation, which is exact for the closed predicate language here. *)
val is_strong : Schema.t -> t -> bool

(** Equality atoms [(a, b)] appearing in a pure conjunction of column
    equalities; [None] if the predicate has any other shape. Used by hash
    joins and by the walk/chase machinery. *)
val as_equi_atoms : t -> (Attr.t * Attr.t) list option

(** Syntactic renaming of every column owned by node [from] to node [into]. *)
val rename_rel : t -> from:string -> into:string -> t

val to_sql : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
