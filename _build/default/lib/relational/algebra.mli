(** Relational algebra over {!Relation.t}, including the data-merging
    operators the paper builds on: outer joins and outer union.

    All operators produce deduplicated results (set semantics) and preserve
    schema layout deterministically (left operand's attributes first). *)

(** [select p r] — σ_p(r). *)
val select : Predicate.t -> Relation.t -> Relation.t

(** [project attrs r] — π_attrs(r), deduplicated. *)
val project : Attr.t list -> Relation.t -> Relation.t

(** Cartesian product; schemas must be attribute-disjoint. *)
val product : Relation.t -> Relation.t -> Relation.t

(** [join p l r] — inner join.  When [p]'s equality atoms span both sides a
    hash join is used; otherwise falls back to filtered product. *)
val join : Predicate.t -> Relation.t -> Relation.t -> Relation.t

(** Sort-merge implementation of the inner equi-join; requires [p] to be a
    conjunction of cross-side equality atoms (raises [Invalid_argument]
    otherwise).  Same result as {!join}; bench ablation compares hash,
    sort-merge and nested-loop execution. *)
val join_sort_merge : Predicate.t -> Relation.t -> Relation.t -> Relation.t

(** Nested-loop implementation of the inner join (any predicate). *)
val join_nested_loop : Predicate.t -> Relation.t -> Relation.t -> Relation.t

(** Left outer join: unmatched left tuples padded with nulls on the right. *)
val left_outer_join : Predicate.t -> Relation.t -> Relation.t -> Relation.t

(** Full outer join: unmatched tuples on either side padded with nulls. *)
val full_outer_join : Predicate.t -> Relation.t -> Relation.t -> Relation.t

(** Union of same-schema relations. *)
val union : Relation.t -> Relation.t -> Relation.t

(** Set difference of same-schema relations. *)
val difference : Relation.t -> Relation.t -> Relation.t

(** Outer union: union over the merged schema, each side padded with nulls
    on the attributes it lacks (footnote 1 of the paper).  Shared attributes
    are identified by qualified name. *)
val outer_union : Relation.t -> Relation.t -> Relation.t

(** [pad r schema] — extend each tuple of [r] with nulls so it ranges over
    [schema]; [schema] must contain all of [r]'s attributes. *)
val pad : Relation.t -> Schema.t -> Relation.t
