(** Tuples: value arrays laid out according to a {!Schema.t}.

    Tuples do not carry their schema; every operation that needs attribute
    names takes the schema explicitly.  This keeps relations compact and
    makes padding / concatenation (the workhorses of outer union and data
    associations) cheap. *)

type t = Value.t array

val make : Value.t list -> t
val arity : t -> int
val get : t -> int -> Value.t

(** Value of a named attribute. Raises [Not_found] for unknown attributes. *)
val value : Schema.t -> t -> Attr.t -> Value.t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [true] when every field is [Null]. The paper assumes source relations
    contain no all-null tuples; this predicate enforces/checks that. *)
val all_null : t -> bool

(** An all-null tuple of the given arity. *)
val nulls : int -> t

val concat : t -> t -> t

(** Project onto positions. *)
val project : t -> int list -> t

(** [subsumes t1 t2]: same scheme assumed; [t1[A] = t2[A]] wherever
    [t2[A]] is non-null (Definition 3.8). *)
val subsumes : t -> t -> bool

(** Strict subsumption: subsumes and differs (Definition 3.8). *)
val strictly_subsumes : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
