(** Correspondence operators (Section 5): adding a value correspondence,
    with the full workflow the paper describes.

    Three situations arise when the user draws a new correspondence:

    - its source relations are already in the query graph → the mapping is
      simply updated (edge v1/v2 in Section 2);
    - a source relation is missing → Clio runs data walks to propose
      alternative ways of linking it in (edge v3: two scenarios via [mid]
      and [fid]);
    - the target column is already mapped by a different correspondence →
      a {e new mapping} is required; Clio seeds it by reuse (Example 6.2),
      and the alternatives extend that copy. *)


type alternative = {
  mapping : Mapping.t;  (** correspondence installed, graph extended *)
  description : string;
}

type outcome =
  | Updated of Mapping.t
  | Alternatives of alternative list
      (** one per way of linking the missing relation; ranked *)
  | New_mapping of outcome
      (** the target column was already mapped; payload is the outcome of
          adding the correspondence to the reused copy *)

(** [add ~kb m corr].  The correspondence's source attributes name either
    aliases of the graph or base relations; every base relation missing
    from the graph is linked by folding data walks over them (keeping the
    [beam≈6] best partial linkings per step), so a correspondence like
    [Parents.salary + Parents2.salary → FamilyIncome] can pull in several
    relations at once.  Alternatives are deduplicated by graph and ranked.
    [max_len] bounds each walk's length. *)
val add :
  kb:Schemakb.Kb.t -> ?max_len:int -> Mapping.t -> Correspondence.t -> outcome
