open Fulldisj

type removal_result =
  | Removed of Example.t list
  | Would_break_sufficiency of Sufficiency.requirement list

let alternatives_for ~universe e =
  List.filter
    (fun o ->
      (not (Example.equal o e))
      && Coverage.equal (Example.coverage o) (Example.coverage e)
      && Bool.equal o.Example.positive e.Example.positive)
    universe

let swap ~universe ~target_cols illustration ~old_example ~replacement =
  if not (Illustration.mem old_example illustration) then
    invalid_arg "Op_example.swap: example not in the illustration";
  if not (Illustration.mem replacement universe) then
    invalid_arg "Op_example.swap: replacement not in the universe";
  let swapped =
    List.map
      (fun e -> if Example.equal e old_example then replacement else e)
      illustration
  in
  if Sufficiency.is_sufficient ~universe ~target_cols swapped then swapped
  else invalid_arg "Op_example.swap: result would not be sufficient"

let add illustration e =
  if Illustration.mem e illustration then illustration else illustration @ [ e ]

let remove ~universe ~target_cols illustration e =
  let remaining = List.filter (fun o -> not (Example.equal o e)) illustration in
  let missing = Sufficiency.missing ~universe ~target_cols remaining in
  if missing = [] then Removed remaining else Would_break_sufficiency missing
