open Relational
module Qgraph = Querygraph.Qgraph

exception Unserializable of string

let save (m : Mapping.t) =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# clio mapping (runnable with clio_cli run / Clio.Script)";
  line "target %s(%s)" m.Mapping.target (String.concat ", " m.Mapping.target_cols);
  List.iter
    (fun n -> line "node %s %s" n.Qgraph.alias n.Qgraph.base)
    (Qgraph.nodes m.Mapping.graph);
  List.iter
    (fun e -> line "edge %s %s %s" e.Qgraph.n1 e.Qgraph.n2 (Predicate.to_sql e.Qgraph.pred))
    (Qgraph.edges m.Mapping.graph);
  List.iter
    (fun (c : Correspondence.t) ->
      match c.Correspondence.fn with
      | Correspondence.Of_expr e ->
          line "corr %s = %s" c.Correspondence.target (Expr.to_sql e)
      | Correspondence.Custom { name; _ } ->
          raise
            (Unserializable
               (Printf.sprintf "custom correspondence %s (%s) cannot be saved"
                  c.Correspondence.target name)))
    m.Mapping.correspondences;
  List.iter (fun p -> line "sfilter %s" (Predicate.to_sql p)) m.Mapping.source_filters;
  List.iter (fun p -> line "tfilter %s" (Predicate.to_sql p)) m.Mapping.target_filters;
  Buffer.contents b

let load ~db ~kb text =
  match Script.run_result ~db ~kb text with
  | Error e -> Error e
  | Ok { Script.mapping = Some m; _ } -> Ok m
  | Ok { Script.mapping = None; _ } -> Error "script declared no mapping"

let equal_mapping (a : Mapping.t) (b : Mapping.t) =
  Qgraph.equal a.Mapping.graph b.Mapping.graph
  && String.equal a.Mapping.target b.Mapping.target
  && a.Mapping.target_cols = b.Mapping.target_cols
  && List.length a.Mapping.correspondences = List.length b.Mapping.correspondences
  && List.for_all2
       (fun (x : Correspondence.t) (y : Correspondence.t) ->
         String.equal x.Correspondence.target y.Correspondence.target
         && String.equal (Correspondence.to_sql x) (Correspondence.to_sql y))
       a.Mapping.correspondences b.Mapping.correspondences
  && List.map Predicate.to_sql a.Mapping.source_filters
     = List.map Predicate.to_sql b.Mapping.source_filters
  && List.map Predicate.to_sql a.Mapping.target_filters
     = List.map Predicate.to_sql b.Mapping.target_filters

let roundtrips ~db ~kb m =
  match load ~db ~kb (save m) with Ok m' -> equal_mapping m m' | Error _ -> false
