open Relational
module Qgraph = Querygraph.Qgraph

type t = {
  graph : Qgraph.t;
  target : string;
  target_cols : string list;
  correspondences : Correspondence.t list;
  source_filters : Predicate.t list;
  target_filters : Predicate.t list;
}

let validate m =
  if not (Qgraph.is_connected m.graph) then
    invalid_arg "Mapping: query graph must be connected";
  let sorted = List.sort_uniq String.compare m.target_cols in
  if List.length sorted <> List.length m.target_cols then
    invalid_arg "Mapping: duplicate target columns";
  List.iter
    (fun (c : Correspondence.t) ->
      if not (List.mem c.Correspondence.target m.target_cols) then
        invalid_arg ("Mapping: correspondence for unknown target column " ^ c.target);
      List.iter
        (fun a ->
          if not (Qgraph.mem_node m.graph a.Attr.rel) then
            invalid_arg
              (Printf.sprintf "Mapping: correspondence source %s not in query graph"
                 (Attr.to_string a)))
        (Correspondence.sources c))
    m.correspondences;
  let dup_targets =
    List.map (fun (c : Correspondence.t) -> c.Correspondence.target) m.correspondences
  in
  if List.length (List.sort_uniq String.compare dup_targets) <> List.length dup_targets
  then invalid_arg "Mapping: two correspondences for the same target column";
  m

let make ~graph ~target ~target_cols ?(correspondences = []) ?(source_filters = [])
    ?(target_filters = []) () =
  validate
    { graph; target; target_cols; correspondences; source_filters; target_filters }

let target_schema m = Schema.make m.target m.target_cols

let correspondence_for m col =
  List.find_opt
    (fun (c : Correspondence.t) -> String.equal c.Correspondence.target col)
    m.correspondences

let set_correspondence m c =
  let others =
    List.filter
      (fun (o : Correspondence.t) ->
        not (String.equal o.Correspondence.target c.Correspondence.target))
      m.correspondences
  in
  validate { m with correspondences = others @ [ c ] }

let remove_correspondence m col =
  validate
    {
      m with
      correspondences =
        List.filter
          (fun (c : Correspondence.t) -> not (String.equal c.Correspondence.target col))
          m.correspondences;
    }

let with_graph m graph = validate { m with graph }
let add_source_filter m p = validate { m with source_filters = m.source_filters @ [ p ] }

let remove_source_filter m p =
  validate
    { m with source_filters = List.filter (fun q -> not (Predicate.equal p q)) m.source_filters }

let add_target_filter m p = validate { m with target_filters = m.target_filters @ [ p ] }

let remove_target_filter m p =
  validate
    { m with target_filters = List.filter (fun q -> not (Predicate.equal p q)) m.target_filters }

let phi m = { m with source_filters = []; target_filters = [] }

let referenced_aliases m =
  let from_corrs = List.concat_map Correspondence.source_rels m.correspondences in
  let from_filters =
    List.concat_map
      (fun p -> List.map (fun a -> a.Attr.rel) (Predicate.columns p))
      m.source_filters
  in
  List.sort_uniq String.compare (from_corrs @ from_filters)

let pp ppf m =
  Format.fprintf ppf
    "@[<v>mapping into %s@,graph: %a@,correspondences: %a@,C_S: %a@,C_T: %a@]" m.target
    Qgraph.pp m.graph
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Correspondence.pp)
    m.correspondences
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " and ")
       Predicate.pp)
    m.source_filters
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " and ")
       Predicate.pp)
    m.target_filters
