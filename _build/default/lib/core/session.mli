(** Undo/redo over workspace states.

    Section 6.1 notes that when an operator replaces the workspaces, "the
    old workspaces could be 'remembered' to make backing out changes more
    efficient".  A session is exactly that memory: a linear history of
    {!Workspace.t} snapshots with a cursor. *)

type t

val start : Workspace.t -> t

(** The workspace at the cursor. *)
val current : t -> Workspace.t

(** Push the result of an operation; truncates any redo tail. *)
val apply : t -> Workspace.t -> t

(** Step back / forward; identity at the ends. *)
val undo : t -> t

val redo : t -> t
val can_undo : t -> bool
val can_redo : t -> bool

(** Number of remembered states (including the current one). *)
val depth : t -> int

(** Convenience: apply a function to the current workspace and push. *)
val update : t -> (Workspace.t -> Workspace.t) -> t
