(** Focused illustrations (Definition 4.7): given a focus relation F (a
    query-graph node) and focus tuples f ⊆ F, an illustration is focused on
    f when it contains {e every} example whose association involves one of
    the focus tuples. *)

open Relational

(** [focus_set ~universe ~scheme ~rel ~tuples] — the examples that any
    illustration focused on [tuples] must contain: those whose association,
    projected onto [rel]'s columns, equals one of [tuples].  [scheme] is
    the D(G) scheme; [tuples] range over [rel]'s column layout within it. *)
val focus_set :
  universe:Example.t list ->
  scheme:Schema.t ->
  rel:string ->
  tuples:Tuple.t list ->
  Example.t list

(** Check Definition 4.7 for an illustration. *)
val is_focussed :
  universe:Example.t list ->
  scheme:Schema.t ->
  rel:string ->
  tuples:Tuple.t list ->
  Example.t list ->
  bool

(** Focus tuples matching a predicate on the focus relation, a convenience
    for "the user selects the children she knows". *)
val tuples_matching :
  Database.t -> graph:Querygraph.Qgraph.t -> rel:string -> Predicate.t -> Tuple.t list
