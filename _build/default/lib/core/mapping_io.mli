(** Mapping persistence, using the {!Script} language as the on-disk
    format: a saved mapping is a runnable script of [target]/[node]/
    [edge]/[corr]/[sfilter]/[tfilter] commands, so saved files are
    human-readable, diffable, and editable by hand.

    Custom (opaque OCaml) correspondences cannot be serialized; {!save}
    raises on them.  Everything expressible with {!Relational.Expr} round
    trips — tested by [test_script.ml]. *)

open Relational

exception Unserializable of string

(** Render a mapping as a script.  Raises {!Unserializable} for custom
    correspondences. *)
val save : Mapping.t -> string

(** Rebuild a mapping by running a saved script (only declaration commands
    are expected, but any valid script works).  Errors are reported as
    [Error message]. *)
val load : db:Database.t -> kb:Schemakb.Kb.t -> string -> (Mapping.t, string) result

(** [save] then [load] and compare (test oracle). *)
val roundtrips : db:Database.t -> kb:Schemakb.Kb.t -> Mapping.t -> bool
