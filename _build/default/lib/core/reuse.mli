(** Mapping reuse (Section 6.2): when a second way of computing a target
    column is introduced, Clio spawns a new mapping that copies the
    correspondences and filters for the other columns, and the query graph
    as it was before that column was first mapped.

    We do not keep mapping history, so "the graph as it was prior" is
    recovered by pruning: the smallest induced connected subgraph still
    supporting the remaining correspondences and source filters. *)

(** Iteratively drop leaf nodes not referenced by any correspondence or
    source filter.  The result still contains every referenced alias and
    remains connected. *)
val prune_graph : Mapping.t -> Mapping.t

(** [derive_for m ~target_col] — the reusable base mapping for a new way of
    computing [target_col]: [m] minus [target_col]'s correspondence, graph
    pruned (Example 6.2). *)
val derive_for : Mapping.t -> target_col:string -> Mapping.t
