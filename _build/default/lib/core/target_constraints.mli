(** Deriving data-trimming filters from target-schema constraints.

    Section 2: "Clio also uses target constraints (provided as part of the
    schema or input by the user) as part of mapping creation.  For example,
    a target constraint may indicate that every Kid tuple must have an ID
    value.  From this constraint, Clio would know not to include SBPS or
    Parent values in the target if they are not associated with a Child
    tuple."  This module turns declared constraints on the target relation
    into the corresponding C_T predicates. *)

open Relational

(** Predicates induced on the target relation: not-null columns and primary
    key columns become [is not null] filters; constraints on other
    relations are ignored. *)
val filters_of : Integrity.t list -> target:string -> Predicate.t list

(** Add every induced filter to the mapping's C_T (skipping ones already
    present). *)
val apply : Integrity.t list -> Mapping.t -> Mapping.t
