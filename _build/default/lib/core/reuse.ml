module Qgraph = Querygraph.Qgraph

let prune_graph (m : Mapping.t) =
  let needed = Mapping.referenced_aliases m in
  let rec shrink g =
    let removable =
      Qgraph.aliases g
      |> List.filter (fun a ->
             (not (List.mem a needed))
             && List.length (Qgraph.neighbours g a) <= 1
             && Qgraph.node_count g > 1)
    in
    match removable with
    | [] -> g
    | a :: _ ->
        shrink (Qgraph.induced g (List.filter (fun x -> x <> a) (Qgraph.aliases g)))
  in
  Mapping.with_graph m (shrink m.Mapping.graph)

let derive_for (m : Mapping.t) ~target_col =
  prune_graph (Mapping.remove_correspondence m target_col)
