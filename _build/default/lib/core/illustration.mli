(** Illustrations: sets of examples shown to the user, with text rendering
    in the style of the paper's Figures 8 and 9. *)

open Relational
open Fulldisj

type t = Example.t list

(** Examples grouped by coverage, categories in first-appearance order. *)
val by_category : t -> (Coverage.t * Example.t list) list

val positives : t -> t
val negatives : t -> t

(** Render the source side: one row per example, tagged with coverage and
    polarity.  [short] abbreviates alias names in tags (the paper writes
    "CPPhS"); [columns] optionally restricts the displayed attributes (the
    paper drops unused columns "due to space constraints"). *)
val render :
  ?short:(string -> string option) ->
  ?columns:Attr.t list ->
  scheme:Schema.t ->
  t ->
  string

(** Render the induced target tuples (positive examples' rows marked "+",
    negative "-"). *)
val render_target : ?short:(string -> string option) -> target_schema:Schema.t -> t -> string

(** Membership up to {!Example.equal}. *)
val mem : Example.t -> t -> bool

(** The paper's Figure 3/4 style: render each source relation as its own
    table, marking the rows that participate in the illustration with [*]
    ("the highlighted rows of Figure 3").  [lookup] resolves base
    relations; aliases of the same base render as separate tables. *)
val render_source_tables :
  lookup:(string -> Relational.Relation.t option) ->
  graph:Querygraph.Qgraph.t ->
  scheme:Schema.t ->
  t ->
  string
