open Relational

let filters_of constraints ~target =
  List.concat_map
    (fun c ->
      match c with
      | Integrity.Not_null (rel, col) when String.equal rel target ->
          [ Predicate.Is_not_null (Expr.col target col) ]
      | Integrity.Primary_key (rel, cols) when String.equal rel target ->
          List.map (fun col -> Predicate.Is_not_null (Expr.col target col)) cols
      | Integrity.Not_null _ | Integrity.Primary_key _ | Integrity.Foreign_key _ -> [])
    constraints
  |> List.fold_left
       (fun acc p -> if List.exists (Predicate.equal p) acc then acc else acc @ [ p ])
       []

let apply constraints (m : Mapping.t) =
  filters_of constraints ~target:m.Mapping.target
  |> List.fold_left
       (fun m p ->
         if List.exists (Predicate.equal p) m.Mapping.target_filters then m
         else Mapping.add_target_filter m p)
       m
