open Relational
open Fulldisj

type t = Example.t list

let by_category exs =
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      let key = Coverage.to_list (Example.coverage e) in
      if not (Hashtbl.mem groups key) then order := (key, Example.coverage e) :: !order;
      Hashtbl.add groups key e)
    exs;
  List.rev !order
  |> List.map (fun (key, cov) -> (cov, List.rev (Hashtbl.find_all groups key)))

let positives = List.filter Example.is_positive
let negatives = List.filter Example.is_negative

let render ?short ?columns ~scheme exs =
  let positions =
    match columns with
    | None -> List.init (Schema.arity scheme) Fun.id
    | Some cols -> List.map (Schema.index scheme) cols
  in
  let shown_schema =
    Schema.of_attrs (List.map (fun i -> (Schema.attrs scheme).(i)) positions)
  in
  let rows =
    List.map
      (fun e ->
        (Example.tag ?short e, Tuple.project e.Example.assoc.Assoc.tuple positions))
      exs
  in
  Render.annotated ~annot_header:"coverage" rows shown_schema

let render_target ?short ~target_schema exs =
  let rows =
    List.map (fun e -> (Example.tag ?short e, e.Example.target_tuple)) exs
  in
  Render.annotated ~qualified:false ~annot_header:"coverage" rows target_schema

let mem e = List.exists (Example.equal e)

let render_source_tables ~lookup ~graph ~scheme exs =
  Querygraph.Qgraph.nodes graph
  |> List.map (fun n ->
         let alias = n.Querygraph.Qgraph.alias in
         let rel = Querygraph.Qgraph.node_relation ~lookup graph alias in
         let involved =
           exs
           |> List.filter (fun e -> Coverage.mem alias (Example.coverage e))
           |> List.map (fun e -> Assoc.project_alias scheme e.Example.assoc alias)
         in
         let rows =
           Relation.tuples rel
           |> List.map (fun t ->
                  ((if List.exists (Tuple.equal t) involved then "*" else ""), t))
         in
         alias ^ "\n" ^ Render.annotated ~qualified:false ~annot_header:"" rows
                          (Relation.schema rel))
  |> String.concat "\n\n"
