lib/core/illustration.ml: Array Assoc Coverage Example Fulldisj Fun Hashtbl List Querygraph Relation Relational Render Schema String Tuple
