lib/core/mapping_eval.ml: Array Assoc Correspondence Database Example Full_disjunction Fulldisj List Mapping Outerjoin_plan Predicate Querygraph Relation Relational Value
