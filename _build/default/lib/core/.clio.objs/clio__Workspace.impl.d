lib/core/workspace.ml: Buffer Database Differentiate Evolution Fulldisj Illustration List Mapping Mapping_eval Option Printf Querygraph Relational Render Schemakb Sufficiency
