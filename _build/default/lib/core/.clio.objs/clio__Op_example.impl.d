lib/core/op_example.ml: Bool Coverage Example Fulldisj Illustration List Sufficiency
