lib/core/target.ml: Fulldisj List Mapping Mapping_eval Relation Relational String
