lib/core/mapping_io.mli: Database Mapping Relational Schemakb
