lib/core/evolution.mli: Database Example Mapping Relational Schema
