lib/core/script.mli: Database Mapping Relational Schemakb
