lib/core/workspace.mli: Database Differentiate Illustration Mapping Relation Relational Schemakb
