lib/core/sufficiency.ml: Array Bool Coverage Example Format Fulldisj Hashtbl List Relational String Value
