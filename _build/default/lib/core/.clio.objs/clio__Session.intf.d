lib/core/session.mli: Workspace
