lib/core/op_walk.mli: Mapping Querygraph Schemakb
