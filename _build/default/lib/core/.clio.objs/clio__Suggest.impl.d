lib/core/suggest.ml: Correspondence List Mapping Op_walk Querygraph Schemakb String
