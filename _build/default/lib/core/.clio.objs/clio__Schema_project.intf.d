lib/core/schema_project.mli: Database Integrity Mapping Project Relational
