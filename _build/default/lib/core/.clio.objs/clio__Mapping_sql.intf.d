lib/core/mapping_sql.mli: Database Mapping Predicate Relational
