lib/core/focus.ml: Algebra Assoc Database Example Fulldisj Illustration List Querygraph Relation Relational Schema Tuple
