lib/core/explain.ml: Assoc Correspondence Coverage Example Full_disjunction Fulldisj List Mapping Mapping_eval Printf Querygraph Relational Schema String Tuple
