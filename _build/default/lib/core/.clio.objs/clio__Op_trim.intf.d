lib/core/op_trim.mli: Database Example Mapping Predicate Relational
