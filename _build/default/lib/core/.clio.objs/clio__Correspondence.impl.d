lib/core/correspondence.ml: Array Attr Expr Format List Printf Relational Schema String Value
