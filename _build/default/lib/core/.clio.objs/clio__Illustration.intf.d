lib/core/illustration.mli: Attr Coverage Example Fulldisj Querygraph Relational Schema
