lib/core/evolution.ml: Array Assoc Database Example Fulldisj Illustration List Mapping Mapping_eval Querygraph Relational Schema Sufficiency Tuple
