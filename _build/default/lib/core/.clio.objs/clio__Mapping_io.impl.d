lib/core/mapping_io.ml: Buffer Correspondence Expr List Mapping Predicate Printf Querygraph Relational Script String
