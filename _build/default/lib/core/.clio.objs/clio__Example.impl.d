lib/core/example.ml: Assoc Bool Coverage Fulldisj Relational Tuple
