lib/core/correspondence.mli: Attr Expr Format Relational Schema Tuple Value
