lib/core/differentiate.ml: Assoc Coverage Example Full_disjunction Fulldisj Hashtbl List Mapping Mapping_eval Option Printf Querygraph Relation Relational Render Schema Tuple
