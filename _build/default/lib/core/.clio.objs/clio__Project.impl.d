lib/core/project.ml: Array Attr List Mapping Option Printf Relation Relational Render Schema String Target Value
