lib/core/project.mli: Database Mapping Relation Relational
