lib/core/target_constraints.mli: Integrity Mapping Predicate Relational
