lib/core/differentiate.mli: Database Mapping Relational Schema Tuple
