lib/core/op_correspondence.ml: Correspondence List Mapping Op_walk Querygraph Reuse Schemakb String
