lib/core/target_constraints.ml: Expr Integrity List Mapping Predicate Relational String
