lib/core/interpretation.mli: Database Format Mapping Relation Relational Schema Tuple
