lib/core/interpretation.ml: Assoc Coverage Database Format Full_disjunction Fulldisj Join_eval List Mapping Mapping_eval Predicate Querygraph Relation Relational Render Schema String Tuple
