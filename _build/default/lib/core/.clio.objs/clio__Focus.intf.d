lib/core/focus.mli: Database Example Predicate Querygraph Relational Schema Tuple
