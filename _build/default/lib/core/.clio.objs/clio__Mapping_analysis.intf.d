lib/core/mapping_analysis.mli: Coverage Database Fulldisj Mapping Relation Relational
