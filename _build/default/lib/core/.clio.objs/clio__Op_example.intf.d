lib/core/op_example.mli: Example Sufficiency
