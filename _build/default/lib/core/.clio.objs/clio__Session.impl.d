lib/core/session.ml: List Workspace
