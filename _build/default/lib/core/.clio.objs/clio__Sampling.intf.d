lib/core/sampling.mli: Database Example Mapping Querygraph Relational
