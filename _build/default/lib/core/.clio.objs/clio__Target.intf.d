lib/core/target.mli: Database Mapping Relation Relational
