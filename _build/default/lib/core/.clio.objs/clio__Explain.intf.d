lib/core/explain.mli: Database Example Mapping Relational Schema Tuple
