lib/core/sufficiency.mli: Coverage Example Format Fulldisj
