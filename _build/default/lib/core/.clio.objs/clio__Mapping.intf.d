lib/core/mapping.mli: Correspondence Format Predicate Querygraph Relational Schema
