lib/core/report_html.mli: Database Mapping Relational
