lib/core/op_walk.ml: List Mapping Option Predicate Printf Querygraph Relational Schemakb String
