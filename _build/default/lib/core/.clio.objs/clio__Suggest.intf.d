lib/core/suggest.mli: Correspondence Mapping Querygraph Schemakb
