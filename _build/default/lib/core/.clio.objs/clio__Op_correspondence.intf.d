lib/core/op_correspondence.mli: Correspondence Mapping Schemakb
