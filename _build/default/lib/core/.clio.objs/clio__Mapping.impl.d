lib/core/mapping.ml: Attr Correspondence Format List Predicate Printf Querygraph Relational Schema String
