lib/core/op_chase.mli: Attr Database Example Mapping Querygraph Relational Value Value_index
