lib/core/op_trim.ml: Example Expr Fulldisj List Mapping Mapping_eval Option Predicate Relational
