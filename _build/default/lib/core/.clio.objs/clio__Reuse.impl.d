lib/core/reuse.ml: List Mapping Querygraph
