lib/core/reuse.mli: Mapping
