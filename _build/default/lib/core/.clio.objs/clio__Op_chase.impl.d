lib/core/op_chase.ml: Array Assoc Attr Database Example Full_disjunction Fulldisj List Mapping Mapping_eval Predicate Printf Querygraph Relational Schema Value Value_index
