lib/core/schema_project.ml: Database Integrity List Mapping Printf Project Relational String
