lib/core/mapping_eval.mli: Assoc Database Example Full_disjunction Fulldisj Mapping Relation Relational Tuple
