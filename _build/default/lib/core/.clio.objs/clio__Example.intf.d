lib/core/example.mli: Assoc Coverage Fulldisj Relational Tuple
