(** Operators on mapping examples (Section 1: "a small set of intuitive
    operators for manipulating examples"; Section 2: the user "can view and
    manipulate the illustrations, perhaps asking for different example
    tuples").

    These operators edit an illustration while keeping it sufficient:
    swapping an example for an equivalent one the user knows better, adding
    extra examples, and removing examples — refusing when removal would
    leave some aspect of the mapping unillustrated. *)

type removal_result =
  | Removed of Example.t list
  | Would_break_sufficiency of Sufficiency.requirement list

(** Other examples in the universe with the same coverage and polarity as
    the given one — the candidates for "show me a different tuple". *)
val alternatives_for : universe:Example.t list -> Example.t -> Example.t list

(** Replace [old_example] with [replacement] (must come from the universe).
    Raises [Invalid_argument] if the result would not be sufficient, or if
    [old_example] is absent. *)
val swap :
  universe:Example.t list ->
  target_cols:string list ->
  Example.t list ->
  old_example:Example.t ->
  replacement:Example.t ->
  Example.t list

(** Add an example (idempotent). *)
val add : Example.t list -> Example.t -> Example.t list

(** Remove an example, unless sufficiency would be lost — then report the
    requirements only it satisfies. *)
val remove :
  universe:Example.t list ->
  target_cols:string list ->
  Example.t list ->
  Example.t ->
  removal_result
