open Relational
open Fulldisj

type t = { assoc : Assoc.t; target_tuple : Tuple.t; positive : bool }

let coverage e = e.assoc.Assoc.coverage
let is_positive e = e.positive
let is_negative e = not e.positive
let polarity e = if e.positive then "+" else "-"

let equal a b =
  Assoc.equal a.assoc b.assoc
  && Tuple.equal a.target_tuple b.target_tuple
  && Bool.equal a.positive b.positive

let tag ?short e = Coverage.label ?short (coverage e) ^ " " ^ polarity e
