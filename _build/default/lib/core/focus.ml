open Relational
open Fulldisj
module Qgraph = Querygraph.Qgraph

let focus_set ~universe ~scheme ~rel ~tuples =
  let positions = Schema.positions_of_rel scheme rel in
  if positions = [] then invalid_arg ("Focus: unknown relation " ^ rel);
  List.filter
    (fun e ->
      let proj = Tuple.project e.Example.assoc.Assoc.tuple positions in
      List.exists (Tuple.equal proj) tuples)
    universe

let is_focussed ~universe ~scheme ~rel ~tuples illustration =
  focus_set ~universe ~scheme ~rel ~tuples
  |> List.for_all (fun e -> Illustration.mem e illustration)

let tuples_matching db ~graph ~rel pred =
  let r = Qgraph.node_relation ~lookup:(Database.find db) graph rel in
  Relation.tuples (Algebra.select pred r)
