(** Universal-relation-style mapping suggestion (Section 7): given only the
    relations a user's correspondences mention, propose connected query
    graphs joining them — the starting point Clio derives from value
    correspondences alone ("much of the work on universal relations can be
    used to suggest possible mappings").

    Unlike Universal Relation systems, which must characterize when the
    translation is well-behaved, a schema-mapping tool proposes {e all}
    reasonable linkings and lets the user discriminate them with examples;
    this module accordingly enumerates alternatives (ranked) rather than
    computing one canonical answer. *)

module Qgraph = Querygraph.Qgraph

type suggestion = { graph : Qgraph.t; description : string }

(** [connection_graphs ~kb rels] — connected query graphs over the KB
    containing (an occurrence of) every base relation in [rels], built by
    folding walks from the first relation; ranked by {!Schemakb.Rank}
    relative to the single-node start.  [max_len] bounds each linking walk
    (default 3); [beam] bounds partial states kept per step (default 6).
    Raises [Invalid_argument] on an empty list. *)
val connection_graphs :
  kb:Schemakb.Kb.t ->
  ?max_len:int ->
  ?beam:int ->
  string list ->
  suggestion list

(** [mappings_for ~kb ~target ~target_cols corrs] — seed mappings for a set
    of correspondences: one suggestion per connection graph over the
    relations the correspondences mention, with all correspondences
    installed. *)
val mappings_for :
  kb:Schemakb.Kb.t ->
  ?max_len:int ->
  target:string ->
  target_cols:string list ->
  Correspondence.t list ->
  (Mapping.t * string) list
