(** Mapping examples (Definition 4.1): pairs e = (d, t) of a data
    association and the target tuple it induces.

    [t] is always the unfiltered transform Q_{φ(M)}(d); [positive] records
    whether [d] satisfies C_S and [t] satisfies C_T.  A positive example
    shows source tuples contributing to the target; a negative example
    shows a valid combination that the filters exclude. *)

open Relational
open Fulldisj

type t = { assoc : Assoc.t; target_tuple : Tuple.t; positive : bool }

val coverage : t -> Coverage.t
val is_positive : t -> bool
val is_negative : t -> bool

(** Polarity tag used in renderings: "+" / "-". *)
val polarity : t -> string

val equal : t -> t -> bool

(** Row label in the Figure 8/9 style: coverage tag plus polarity,
    e.g. ["CPPhS +"].  [short] abbreviates aliases as in
    {!Fulldisj.Coverage.label}. *)
val tag : ?short:(string -> string option) -> t -> string
