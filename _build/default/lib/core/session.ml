(* past holds states older than the cursor (most recent first); future holds
   undone states (nearest first). *)
type t = { past : Workspace.t list; now : Workspace.t; future : Workspace.t list }

let start ws = { past = []; now = ws; future = [] }
let current t = t.now
let apply t ws = { past = t.now :: t.past; now = ws; future = [] }

let undo t =
  match t.past with
  | [] -> t
  | p :: rest -> { past = rest; now = p; future = t.now :: t.future }

let redo t =
  match t.future with
  | [] -> t
  | f :: rest -> { past = t.now :: t.past; now = f; future = rest }

let can_undo t = t.past <> []
let can_redo t = t.future <> []
let depth t = 1 + List.length t.past + List.length t.future
let update t f = apply t (f t.now)
