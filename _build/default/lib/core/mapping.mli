(** Mappings (Definition 3.14): M = ⟨G, V, C_S, C_T⟩.

    A mapping produces a subset of one target relation from a set of source
    relations.  [G] links source tuples (data linking), [V] translates data
    associations into target tuples (correspondence), and the filters [C_S]
    (over source attributes) and [C_T] (over the target relation) trim the
    result (data trimming). *)

open Relational
module Qgraph = Querygraph.Qgraph

type t = private {
  graph : Qgraph.t;
  target : string;  (** target relation name *)
  target_cols : string list;  (** B1..Bm, fixing the target schema order *)
  correspondences : Correspondence.t list;  (** at most one per target column *)
  source_filters : Predicate.t list;  (** C_S *)
  target_filters : Predicate.t list;  (** C_T *)
}

(** [make ~graph ~target ~target_cols ()] — an empty mapping (no
    correspondences or filters).  Raises [Invalid_argument] if [graph] is
    not connected or [target_cols] has duplicates. *)
val make :
  graph:Qgraph.t ->
  target:string ->
  target_cols:string list ->
  ?correspondences:Correspondence.t list ->
  ?source_filters:Predicate.t list ->
  ?target_filters:Predicate.t list ->
  unit ->
  t

val target_schema : t -> Schema.t

(** The correspondence for a target column, if any. *)
val correspondence_for : t -> string -> Correspondence.t option

(** Add or replace pieces, revalidating.  [set_correspondence] raises
    [Invalid_argument] if the column is not a target column or if its source
    nodes are absent from the graph; use {!Op_correspondence.add} for the
    full workflow that extends the graph. *)
val set_correspondence : t -> Correspondence.t -> t

val remove_correspondence : t -> string -> t
val with_graph : t -> Qgraph.t -> t
val add_source_filter : t -> Predicate.t -> t
val remove_source_filter : t -> Predicate.t -> t
val add_target_filter : t -> Predicate.t -> t
val remove_target_filter : t -> Predicate.t -> t

(** φ(M): the mapping without any filters (Section 4.1). *)
val phi : t -> t

(** Source node aliases referenced by correspondences and source filters. *)
val referenced_aliases : t -> string list

val pp : Format.formatter -> t -> unit
