(** Value correspondences (Definition 3.1): functions over source attribute
    values that compute a value for one target attribute.

    A correspondence is either a scalar {!Relational.Expr.t} (renderable to
    SQL) or an opaque OCaml function with a display name.  Either way it
    exposes its source attributes, which mapping construction uses to decide
    which relations must be linked into the query graph. *)

open Relational

type fn =
  | Of_expr of Expr.t
  | Custom of { name : string; sources : Attr.t list; fn : Value.t list -> Value.t }

type t = { target : string;  (** target column name *) fn : fn }

(** [identity target src] — v : src → target. *)
val identity : string -> Attr.t -> t

val of_expr : string -> Expr.t -> t
val constant : string -> Value.t -> t

(** [custom target name sources fn]. *)
val custom : string -> string -> Attr.t list -> (Value.t list -> Value.t) -> t

(** Source attributes mentioned by the correspondence. *)
val sources : t -> Attr.t list

(** Base-relation-independent: the node names (aliases) mentioned. *)
val source_rels : t -> string list

(** Compile against the scheme of D(G).  Raises [Not_found] if a source
    attribute is missing from the scheme. *)
val compile : Schema.t -> t -> Tuple.t -> Value.t

(** Rename every source attribute owned by node [from] to node [into]
    (used when a walk binds a correspondence's relation to a fresh copy). *)
val rename_rel : t -> from:string -> into:string -> t

(** SQL select-item, e.g. ["C.ID as ID"] or ["concat(Ph.type, Ph.number) as
    contactPh"]. *)
val to_sql : t -> string

val pp : Format.formatter -> t -> unit
