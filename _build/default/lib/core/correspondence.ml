open Relational

type fn =
  | Of_expr of Expr.t
  | Custom of { name : string; sources : Attr.t list; fn : Value.t list -> Value.t }

type t = { target : string; fn : fn }

let identity target src = { target; fn = Of_expr (Expr.Col src) }
let of_expr target e = { target; fn = Of_expr e }
let constant target v = { target; fn = Of_expr (Expr.Const v) }
let custom target name sources fn = { target; fn = Custom { name; sources; fn } }

let sources t =
  match t.fn with Of_expr e -> Expr.columns e | Custom { sources; _ } -> sources

let source_rels t =
  sources t |> List.map (fun a -> a.Attr.rel) |> List.sort_uniq String.compare

let rename_rel t ~from ~into =
  match t.fn with
  | Of_expr e -> { t with fn = Of_expr (Expr.rename_rel e ~from ~into) }
  | Custom c ->
      let sources =
        List.map
          (fun a ->
            if String.equal a.Attr.rel from then Attr.make into a.Attr.name else a)
          c.sources
      in
      { t with fn = Custom { c with sources } }

let compile scheme t =
  match t.fn with
  | Of_expr e -> Expr.compile scheme e
  | Custom { sources; fn; _ } ->
      let positions = List.map (Schema.index scheme) sources in
      fun tuple -> fn (List.map (fun i -> tuple.(i)) positions)

let to_sql t =
  let body =
    match t.fn with
    | Of_expr e -> Expr.to_sql e
    | Custom { name; sources; _ } ->
        Printf.sprintf "%s(%s)" name
          (String.concat ", " (List.map Attr.to_string sources))
  in
  Printf.sprintf "%s as %s" body t.target

let pp ppf t = Format.pp_print_string ppf (to_sql t)
