examples/quickstart.mli:
