examples/alternatives_tour.mli:
