examples/large_schema_etl.mli:
