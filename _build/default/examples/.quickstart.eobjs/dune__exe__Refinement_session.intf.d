examples/refinement_session.mli:
