examples/matcher_bootstrap.ml: Attr Clio Correspondence Differentiate Format List Mapping Paperdata Printf Querygraph Random Relational Sampling Schemakb Suggest Synth Unix
