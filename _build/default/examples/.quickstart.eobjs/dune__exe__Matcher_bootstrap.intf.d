examples/matcher_bootstrap.mli:
