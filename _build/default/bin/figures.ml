(* Regenerate the paper's figures and worked examples.

   Usage:  figures            — print everything
           figures fig8 sql   — print selected experiments
           figures --list     — list available experiment ids *)

let print_one (id, descr, render) =
  Printf.printf "=============================================================\n";
  Printf.printf "%s — %s\n" id descr;
  Printf.printf "=============================================================\n";
  print_endline (render ());
  print_newline ()

let () =
  match Array.to_list Sys.argv with
  | _ :: [ "--list" ] ->
      List.iter
        (fun (id, descr, _) -> Printf.printf "%-6s %s\n" id descr)
        Paperdata.Report.all
  | [] | [ _ ] -> List.iter print_one Paperdata.Report.all
  | _ :: ids ->
      List.iter
        (fun id ->
          match
            List.find_opt (fun (i, _, _) -> String.equal i id) Paperdata.Report.all
          with
          | Some exp -> print_one exp
          | None ->
              Printf.eprintf "unknown experiment %s (try --list)\n" id;
              exit 1)
        ids
